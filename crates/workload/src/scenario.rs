//! Declarative experiment scenarios (the scenario lab).
//!
//! The paper's experiments — and this repository's `fig*` harnesses —
//! were originally hard-coded per figure. A [`ScenarioSpec`] replaces that
//! with data: one JSON file describes a *family* of runs as
//!
//! * a [`Knobs`] base point (workload shape, rates, skew, system size,
//!   memory budget, placement strategy, node heterogeneity, …), and
//! * a [`Sweep`] of axes, each a list of values; the lab expands the
//!   **cross-product** of all non-empty axes into concrete runs.
//!
//! Correlated parameters (e.g. Fig. 8's "larger joins arrive more
//! slowly") are expressed with the [`Patch`] axis: each patch overrides
//! several knobs *together* and counts as one axis value.
//!
//! The module is simulator-agnostic: expansion produces [`ScenarioRun`]s
//! (labelled [`Knobs`]); lowering a run to a full `snsim::SimConfig`
//! lives in `snsim::scenario`, and the CLI driving spec files lives in
//! the `bench` crate (`cargo run --release --bin lab`).
//!
//! ```
//! use workload::scenario::ScenarioSpec;
//!
//! let spec: ScenarioSpec = serde_json::from_str(
//!     r#"{
//!         "name": "demo",
//!         "base": { "selectivity": 0.01, "qps_per_pe": 0.25 },
//!         "sweep": {
//!             "strategy": ["MIN-IO", "pmu-cpu+LUM", "OPT-IO-CPU"],
//!             "n_pes": [10, 40, 80]
//!         }
//!     }"#,
//! )
//! .unwrap();
//! assert_eq!(spec.run_count(), 9);
//! ```

use crate::arrivals::Modulation;
use crate::mix::WorkloadSpec;
use crate::oltp::NodeFilter;
use dbmodel::RelationId;
use lb_core::{BrokerConfig, PolicyConfig, ReadMode, Strategy};
use obs::TraceConfig;
use sched::AdmissionConfig;
use serde::{Deserialize, Serialize};
use simkit::QueueKind;

/// A placement strategy in a scenario file.
///
/// Serializes as the compact report label (`"MIN-IO"`,
/// `"pmu-cpu+LUM"`, `"fixed(22)+RANDOM"`, …) whenever one exists and
/// accepts either that label or the full tagged enum encoding on input,
/// so specs stay hand-writable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategySpec(pub Strategy);

impl Default for StrategySpec {
    fn default() -> Self {
        StrategySpec(Strategy::OptIoCpu)
    }
}

impl Serialize for StrategySpec {
    fn to_value(&self) -> serde::Value {
        match self.0.spec_label() {
            Some(label) => serde::Value::Str(label),
            None => self.0.to_value(),
        }
    }
}

impl Deserialize for StrategySpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(label) = v.as_str() {
            return Strategy::parse(label).map(StrategySpec).map_err(|e| {
                serde::Error::custom(format!(
                    "{e} (try e.g. \"MIN-IO\", \"OPT-IO-CPU\", \"pmu-cpu+LUM\", \
                     \"fixed(8)+RANDOM\")"
                ))
            });
        }
        Strategy::from_value(v).map(StrategySpec)
    }
}

impl StrategySpec {
    /// Label used in run annotations and result series.
    pub fn label(&self) -> String {
        self.0
            .spec_label()
            .unwrap_or_else(|| self.0.name().to_string())
    }
}

/// Node heterogeneity: per-PE CPU speed factors relative to the paper's
/// 20-MIPS baseline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum NodeSpeed {
    /// All PEs run at the nominal speed (the paper's setting).
    #[default]
    Uniform,
    /// The first `round(fraction · n)` PEs run at `factor` × nominal
    /// speed (factor < 1: a slow partition; > 1: a fast one).
    SlowFraction {
        /// Fraction of PEs affected, in `[0, 1]`.
        fraction: f64,
        /// Speed multiplier for the affected PEs.
        factor: f64,
    },
    /// Explicit per-PE factors; cycled if shorter than the system size.
    Explicit(Vec<f64>),
}

impl NodeSpeed {
    /// Per-PE speed factors for a system of `n` PEs. Empty means uniform.
    pub fn resolve(&self, n: u32) -> Vec<f64> {
        match self {
            NodeSpeed::Uniform => Vec::new(),
            NodeSpeed::SlowFraction { fraction, factor } => {
                let k = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
                (0..n as usize)
                    .map(|i| if i < k { *factor } else { 1.0 })
                    .collect()
            }
            NodeSpeed::Explicit(factors) => {
                if factors.is_empty() {
                    return Vec::new();
                }
                (0..n as usize)
                    .map(|i| factors[i % factors.len()])
                    .collect()
            }
        }
    }

    /// Compact label for run annotations.
    pub fn label(&self) -> String {
        match self {
            NodeSpeed::Uniform => "uniform".into(),
            NodeSpeed::SlowFraction { fraction, factor } => {
                format!("slow({fraction}x@{factor})")
            }
            NodeSpeed::Explicit(f) => format!("explicit({})", f.len()),
        }
    }
}

/// The shape of the workload; the numeric [`Knobs`] fill in rates and
/// selectivities so sweeps can vary them independently of the shape.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum WorkloadShape {
    /// One closed-loop join query at a time (`single-user mode`).
    SingleUserJoin,
    /// Open multi-user join stream (§5.2), optionally skewed.
    #[default]
    HomogeneousJoin,
    /// Joins plus debit-credit OLTP on `oltp_nodes` (§5.3 / Fig. 9).
    Mixed,
}

/// One concrete run point: every knob the scenario lab can turn.
///
/// `Default` is the paper's Fig. 4 configuration at 40 PEs with the
/// OPT-IO-CPU strategy and CI-friendly run lengths; a spec's `base`
/// object only needs the knobs it changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct Knobs {
    /// System size (the paper varies 10–80).
    pub n_pes: u32,
    /// Join placement strategy.
    pub strategy: StrategySpec,
    /// Workload shape (which classes exist).
    pub workload: WorkloadShape,
    /// Scan selectivity of the join inputs (0.01 = the paper's 1%).
    pub selectivity: f64,
    /// Join arrivals per second per PE (open workloads).
    pub qps_per_pe: f64,
    /// Zipf theta of the join redistribution skew (0 = uniform).
    pub skew_theta: f64,
    /// Zipf theta of the *data placement* — fragment sizes of the join
    /// relations (0 = the paper's equal tuples per fragment).
    pub data_skew: f64,
    /// Fragments per join relation (0 = one per home PE).
    pub fragment_count: u32,
    /// Online fragment rebalancing (default controller parameters when
    /// `true`; `false` = the paper's static placement).
    pub rebalance: bool,
    /// OLTP transactions per second per OLTP node (`Mixed` shape).
    pub tps_per_node: f64,
    /// Which nodes run OLTP (`Mixed` shape).
    pub oltp_nodes: NodeFilter,
    /// Time-variation of the join arrival rate.
    pub query_modulation: Modulation,
    /// Time-variation of the OLTP arrival rate.
    pub oltp_modulation: Modulation,
    /// Buffer pages per PE (the paper's 50; Fig. 7 divides by 10).
    pub buffer_pages: u32,
    /// Data disks per PE (the paper varies 1 / 5 / 10).
    pub disks_per_pe: u32,
    /// Interconnect link-bandwidth factor (1.0 = the paper's ≈20 MB/s
    /// EDS links; 0.1 = a 10× slower fabric). Lowered through
    /// `SimConfig::with_net_speed` only when it differs from 1.0, so
    /// legacy specs stay byte-identical.
    pub net_speed: f64,
    /// Per-PE multiprogramming level (the paper's 64; admission
    /// experiments lower it to make MPL backpressure visible).
    pub mpl: u32,
    /// Admission layer between arrivals and launch: policy, budgets,
    /// queue bound, priority tiers. The default (`FcfsMpl`) reproduces
    /// the paper's MPL-only admission bit-for-bit.
    pub admission: AdmissionConfig,
    /// Per-PE CPU speed heterogeneity.
    pub node_speed: NodeSpeed,
    /// Per-work-class placement policies; `None` = paper defaults.
    pub policies: Option<PolicyConfig>,
    /// How the broker serves ranking reads (`SortPerCall` = legacy
    /// baseline for benchmarks; results are identical either way).
    pub broker_reads: ReadMode,
    /// Future-event-list implementation (heap vs. calendar wheel; results
    /// are bit-identical either way).
    pub event_queue: QueueKind,
    /// Threads for the control tick's sampling phase (0/1 = serial;
    /// results are identical at any count).
    pub tick_threads: u32,
    /// Threads for the windowed lane-parallel executor (0 = the plain
    /// sequential dispatcher; ≥ 1 enables windowing, > 1 adds worker
    /// threads). Results are bit-identical at any count.
    pub exec_threads: u32,
    /// Control-plane implementation and fault model (report staleness,
    /// heartbeat loss, failure detection, rack aggregation). Absent in a
    /// spec = the clean central broker, byte-identical to pre-fault runs.
    pub broker: BrokerConfig,
    /// Observability layer: per-round time series, lifecycle JSONL, and
    /// the placement-explain digest. Absent in a spec = disabled, and the
    /// disabled layer is provably inert (bit-identical `Summary`).
    pub trace: TraceConfig,
    /// Simulated seconds.
    pub sim_secs: f64,
    /// Warm-up seconds discarded from statistics.
    pub warmup_secs: f64,
    /// Root RNG seed.
    pub seed: u64,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            n_pes: 40,
            strategy: StrategySpec::default(),
            workload: WorkloadShape::HomogeneousJoin,
            selectivity: 0.01,
            qps_per_pe: 0.25,
            skew_theta: 0.0,
            data_skew: 0.0,
            fragment_count: 0,
            rebalance: false,
            tps_per_node: 100.0,
            oltp_nodes: NodeFilter::All,
            query_modulation: Modulation::None,
            oltp_modulation: Modulation::None,
            buffer_pages: 50,
            disks_per_pe: 10,
            net_speed: 1.0,
            mpl: 64,
            admission: AdmissionConfig::default(),
            node_speed: NodeSpeed::Uniform,
            policies: None,
            broker_reads: ReadMode::default(),
            event_queue: QueueKind::default(),
            tick_threads: 0,
            exec_threads: 0,
            broker: BrokerConfig::default(),
            trace: TraceConfig::default(),
            sim_secs: 40.0,
            warmup_secs: 8.0,
            seed: 0xC0FFEE,
        }
    }
}

impl Knobs {
    /// Lower the workload knobs to the concrete multi-class
    /// [`WorkloadSpec`] this point simulates.
    pub fn workload_spec(&self) -> WorkloadSpec {
        let mut wl = match self.workload {
            WorkloadShape::SingleUserJoin => WorkloadSpec::single_user_join(self.selectivity),
            WorkloadShape::HomogeneousJoin => {
                WorkloadSpec::homogeneous_join(self.selectivity, self.qps_per_pe)
            }
            WorkloadShape::Mixed => WorkloadSpec::mixed(
                self.selectivity,
                self.qps_per_pe,
                RelationId(2),
                self.tps_per_node,
                self.oltp_nodes,
            ),
        };
        for q in &mut wl.queries {
            q.redistribution_skew = self.skew_theta;
            q.modulation = self.query_modulation;
        }
        for o in &mut wl.oltp {
            o.modulation = self.oltp_modulation;
        }
        wl
    }
}

/// A correlated override: sets several knobs together, forming one value
/// of the `paired` sweep axis (Fig. 8 pairs selectivity with arrival
/// rate, bursty scenarios pair a modulation with a rate, …).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct Patch {
    /// Label used in run annotations; derived from the set fields if
    /// omitted.
    pub label: Option<String>,
    /// Override [`Knobs::n_pes`].
    pub n_pes: Option<u32>,
    /// Override [`Knobs::strategy`].
    pub strategy: Option<StrategySpec>,
    /// Override [`Knobs::workload`].
    pub workload: Option<WorkloadShape>,
    /// Override [`Knobs::selectivity`].
    pub selectivity: Option<f64>,
    /// Override [`Knobs::qps_per_pe`].
    pub qps_per_pe: Option<f64>,
    /// Override [`Knobs::skew_theta`].
    pub skew_theta: Option<f64>,
    /// Override [`Knobs::data_skew`].
    pub data_skew: Option<f64>,
    /// Override [`Knobs::fragment_count`].
    pub fragment_count: Option<u32>,
    /// Override [`Knobs::rebalance`].
    pub rebalance: Option<bool>,
    /// Override [`Knobs::tps_per_node`].
    pub tps_per_node: Option<f64>,
    /// Override [`Knobs::oltp_nodes`].
    pub oltp_nodes: Option<NodeFilter>,
    /// Override [`Knobs::query_modulation`].
    pub query_modulation: Option<Modulation>,
    /// Override [`Knobs::oltp_modulation`].
    pub oltp_modulation: Option<Modulation>,
    /// Override [`Knobs::buffer_pages`].
    pub buffer_pages: Option<u32>,
    /// Override [`Knobs::disks_per_pe`].
    pub disks_per_pe: Option<u32>,
    /// Override [`Knobs::net_speed`].
    pub net_speed: Option<f64>,
    /// Override [`Knobs::mpl`].
    pub mpl: Option<u32>,
    /// Override [`Knobs::admission`].
    pub admission: Option<AdmissionConfig>,
    /// Override [`Knobs::node_speed`].
    pub node_speed: Option<NodeSpeed>,
    /// Override [`Knobs::broker_reads`].
    pub broker_reads: Option<ReadMode>,
    /// Override [`Knobs::event_queue`].
    pub event_queue: Option<QueueKind>,
    /// Override [`Knobs::tick_threads`].
    pub tick_threads: Option<u32>,
    /// Override [`Knobs::exec_threads`].
    pub exec_threads: Option<u32>,
    /// Override [`Knobs::broker`].
    pub broker: Option<BrokerConfig>,
    /// Override [`Knobs::trace`].
    pub trace: Option<TraceConfig>,
    /// Override [`Knobs::sim_secs`].
    pub sim_secs: Option<f64>,
    /// Override [`Knobs::warmup_secs`].
    pub warmup_secs: Option<f64>,
    /// Override [`Knobs::seed`].
    pub seed: Option<u64>,
}

impl Patch {
    /// Apply every set field to `knobs`.
    pub fn apply(&self, knobs: &mut Knobs) {
        macro_rules! set {
            ($($f:ident),*) => {$(
                if let Some(v) = &self.$f {
                    knobs.$f = v.clone();
                }
            )*};
        }
        set!(
            n_pes,
            strategy,
            workload,
            selectivity,
            qps_per_pe,
            skew_theta,
            data_skew,
            fragment_count,
            rebalance,
            tps_per_node,
            oltp_nodes,
            query_modulation,
            oltp_modulation,
            buffer_pages,
            disks_per_pe,
            net_speed,
            mpl,
            admission,
            node_speed,
            broker_reads,
            event_queue,
            tick_threads,
            exec_threads,
            broker,
            trace,
            sim_secs,
            warmup_secs,
            seed
        );
    }

    /// Annotation label: explicit `label` or `field=value` pairs. Every
    /// overridable field contributes, so two distinct unlabelled patches
    /// never collapse to the same axis value (which would merge their
    /// result rows).
    pub fn label(&self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        let mut parts = Vec::new();
        if let Some(v) = &self.strategy {
            parts.push(format!("strategy={}", v.label()));
        }
        if let Some(v) = &self.workload {
            parts.push(format!("workload={v:?}"));
        }
        if let Some(v) = self.n_pes {
            parts.push(format!("n_pes={v}"));
        }
        if let Some(v) = self.selectivity {
            parts.push(format!("sel={v}"));
        }
        if let Some(v) = self.qps_per_pe {
            parts.push(format!("qps={v}"));
        }
        if let Some(v) = self.skew_theta {
            parts.push(format!("theta={v}"));
        }
        if let Some(v) = self.data_skew {
            parts.push(format!("dskew={v}"));
        }
        if let Some(v) = self.fragment_count {
            parts.push(format!("frags={v}"));
        }
        if let Some(v) = self.rebalance {
            parts.push(format!("rebalance={v}"));
        }
        if let Some(v) = self.tps_per_node {
            parts.push(format!("tps={v}"));
        }
        if let Some(v) = &self.oltp_nodes {
            parts.push(format!("oltp_nodes={v:?}"));
        }
        if let Some(v) = &self.query_modulation {
            parts.push(format!("qmod={}", modulation_label(v)));
        }
        if let Some(v) = &self.oltp_modulation {
            parts.push(format!("omod={}", modulation_label(v)));
        }
        if let Some(v) = self.buffer_pages {
            parts.push(format!("buf={v}"));
        }
        if let Some(v) = self.disks_per_pe {
            parts.push(format!("disks={v}"));
        }
        if let Some(v) = self.net_speed {
            parts.push(format!("net={v}"));
        }
        if let Some(v) = self.mpl {
            parts.push(format!("mpl={v}"));
        }
        if let Some(v) = &self.admission {
            parts.push(format!("admission={}", v.label()));
        }
        if let Some(v) = &self.node_speed {
            parts.push(format!("speed={}", v.label()));
        }
        if let Some(v) = &self.broker_reads {
            parts.push(format!("reads={v:?}"));
        }
        if let Some(v) = &self.event_queue {
            parts.push(format!("queue={v:?}"));
        }
        if let Some(v) = self.tick_threads {
            parts.push(format!("tick_threads={v}"));
        }
        if let Some(v) = self.exec_threads {
            parts.push(format!("exec_threads={v}"));
        }
        if let Some(v) = &self.broker {
            parts.push(format!("broker={}", v.label()));
        }
        if let Some(v) = &self.trace {
            parts.push(format!("trace={}", v.label()));
        }
        if let Some(v) = self.sim_secs {
            parts.push(format!("sim={v}"));
        }
        if let Some(v) = self.warmup_secs {
            parts.push(format!("warmup={v}"));
        }
        if let Some(v) = self.seed {
            parts.push(format!("seed={v}"));
        }
        if parts.is_empty() {
            "patch".into()
        } else {
            parts.join(",")
        }
    }
}

/// Compact modulation rendering for run labels.
fn modulation_label(m: &Modulation) -> String {
    match m {
        Modulation::None => "none".into(),
        Modulation::Burst {
            factor,
            period_secs,
            duty,
        } => format!("burst({factor}x/{period_secs}s@{duty})"),
        Modulation::Shift { factor, at_secs } => format!("shift({factor}x@{at_secs}s)"),
    }
}

/// Sweep axes. Every non-empty axis contributes one dimension to the
/// cross-product; an empty axis keeps the base value.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct Sweep {
    /// Strategies to compare (one result series each).
    pub strategy: Vec<StrategySpec>,
    /// Admission policies to compare (a series dimension, like
    /// `strategy`).
    pub admission: Vec<AdmissionConfig>,
    /// Correlated multi-knob overrides (one axis, applied together).
    pub paired: Vec<Patch>,
    /// System sizes.
    pub n_pes: Vec<u32>,
    /// Scan selectivities.
    pub selectivity: Vec<f64>,
    /// Join arrival rates per PE.
    pub qps_per_pe: Vec<f64>,
    /// Redistribution skew thetas.
    pub skew_theta: Vec<f64>,
    /// Data-placement skew thetas (fragment sizes).
    pub data_skew: Vec<f64>,
    /// Fragments per join relation.
    pub fragment_count: Vec<u32>,
    /// Online rebalancing on/off.
    pub rebalance: Vec<bool>,
    /// OLTP rates per node.
    pub tps_per_node: Vec<f64>,
    /// Buffer sizes.
    pub buffer_pages: Vec<u32>,
    /// Disks per PE.
    pub disks_per_pe: Vec<u32>,
    /// Interconnect link-bandwidth factors.
    pub net_speed: Vec<f64>,
    /// Multiprogramming levels.
    pub mpl: Vec<u32>,
    /// Node-speed profiles.
    pub node_speed: Vec<NodeSpeed>,
    /// Windowed-executor thread counts (0 = sequential dispatcher).
    /// Sweeping this axis is a determinism check: every value must
    /// produce the same results.
    pub exec_threads: Vec<u32>,
    /// Control-plane configurations (broker kind + fault model) to
    /// compare.
    pub broker: Vec<BrokerConfig>,
    /// Observability configurations. Sweeping trace on/off is an
    /// inertness check: every value must produce the same `Summary`.
    pub trace: Vec<TraceConfig>,
    /// Replication seeds.
    pub seed: Vec<u64>,
}

/// One expanded run: the axis values that produced it plus the final
/// knob settings.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// `(axis, value-label)` pairs in expansion order.
    pub axes: Vec<(String, String)>,
    /// Fully resolved knobs for this run.
    pub knobs: Knobs,
}

impl ScenarioRun {
    /// Value label of one axis, if it was swept.
    pub fn axis(&self, name: &str) -> Option<&str> {
        self.axes
            .iter()
            .find(|(a, _)| a == name)
            .map(|(_, v)| v.as_str())
    }

    /// Compact one-line label of all swept axes.
    pub fn label(&self) -> String {
        if self.axes.is_empty() {
            return "base".into();
        }
        self.axes
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A complete declarative scenario: metadata, base point, sweep.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct ScenarioSpec {
    /// Scenario name; also names the result files under `results/`.
    pub name: String,
    /// Free-form description shown by `lab --dry-run`.
    pub description: String,
    /// Base knob settings (missing knobs = paper defaults).
    pub base: Knobs,
    /// Axes expanded into the cross-product of runs.
    pub sweep: Sweep,
}

impl ScenarioSpec {
    /// Number of runs the sweep expands to (product of non-empty axes).
    pub fn run_count(&self) -> usize {
        let s = &self.sweep;
        [
            s.strategy.len(),
            s.admission.len(),
            s.paired.len(),
            s.n_pes.len(),
            s.selectivity.len(),
            s.qps_per_pe.len(),
            s.skew_theta.len(),
            s.data_skew.len(),
            s.fragment_count.len(),
            s.rebalance.len(),
            s.tps_per_node.len(),
            s.buffer_pages.len(),
            s.disks_per_pe.len(),
            s.net_speed.len(),
            s.mpl.len(),
            s.node_speed.len(),
            s.exec_threads.len(),
            s.broker.len(),
            s.trace.len(),
            s.seed.len(),
        ]
        .iter()
        .filter(|&&n| n > 0)
        .product::<usize>()
        .max(1)
    }

    /// Expand the sweep into concrete runs (cross-product of all
    /// non-empty axes, in deterministic axis order: strategy, paired,
    /// then the scalar axes).
    pub fn runs(&self) -> Vec<ScenarioRun> {
        fn expand<T: Clone>(
            runs: Vec<ScenarioRun>,
            axis: &str,
            values: &[T],
            label: impl Fn(&T) -> String,
            apply: impl Fn(&mut Knobs, &T),
        ) -> Vec<ScenarioRun> {
            if values.is_empty() {
                return runs;
            }
            let mut out = Vec::with_capacity(runs.len() * values.len());
            for run in &runs {
                for v in values {
                    let mut next = run.clone();
                    next.axes.push((axis.to_string(), label(v)));
                    apply(&mut next.knobs, v);
                    out.push(next);
                }
            }
            out
        }

        let mut runs = vec![ScenarioRun {
            axes: Vec::new(),
            knobs: self.base.clone(),
        }];
        let s = &self.sweep;
        runs = expand(
            runs,
            "strategy",
            &s.strategy,
            StrategySpec::label,
            |k, v| k.strategy = *v,
        );
        runs = expand(
            runs,
            "admission",
            &s.admission,
            AdmissionConfig::label,
            |k, v| k.admission = v.clone(),
        );
        runs = expand(runs, "paired", &s.paired, Patch::label, |k, v| v.apply(k));
        runs = expand(runs, "n_pes", &s.n_pes, u32::to_string, |k, v| k.n_pes = *v);
        runs = expand(
            runs,
            "selectivity",
            &s.selectivity,
            f64::to_string,
            |k, v| k.selectivity = *v,
        );
        runs = expand(runs, "qps_per_pe", &s.qps_per_pe, f64::to_string, |k, v| {
            k.qps_per_pe = *v
        });
        runs = expand(runs, "skew_theta", &s.skew_theta, f64::to_string, |k, v| {
            k.skew_theta = *v
        });
        runs = expand(runs, "data_skew", &s.data_skew, f64::to_string, |k, v| {
            k.data_skew = *v
        });
        runs = expand(
            runs,
            "fragment_count",
            &s.fragment_count,
            u32::to_string,
            |k, v| k.fragment_count = *v,
        );
        runs = expand(runs, "rebalance", &s.rebalance, bool::to_string, |k, v| {
            k.rebalance = *v
        });
        runs = expand(
            runs,
            "tps_per_node",
            &s.tps_per_node,
            f64::to_string,
            |k, v| k.tps_per_node = *v,
        );
        runs = expand(
            runs,
            "buffer_pages",
            &s.buffer_pages,
            u32::to_string,
            |k, v| k.buffer_pages = *v,
        );
        runs = expand(
            runs,
            "disks_per_pe",
            &s.disks_per_pe,
            u32::to_string,
            |k, v| k.disks_per_pe = *v,
        );
        runs = expand(runs, "net_speed", &s.net_speed, f64::to_string, |k, v| {
            k.net_speed = *v
        });
        runs = expand(runs, "mpl", &s.mpl, u32::to_string, |k, v| k.mpl = *v);
        runs = expand(
            runs,
            "node_speed",
            &s.node_speed,
            NodeSpeed::label,
            |k, v| k.node_speed = v.clone(),
        );
        runs = expand(
            runs,
            "exec_threads",
            &s.exec_threads,
            u32::to_string,
            |k, v| k.exec_threads = *v,
        );
        runs = expand(runs, "broker", &s.broker, BrokerConfig::label, |k, v| {
            k.broker = *v
        });
        runs = expand(runs, "trace", &s.trace, TraceConfig::label, |k, v| {
            k.trace = *v
        });
        runs = expand(runs, "seed", &s.seed, u64::to_string, |k, v| k.seed = *v);
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::{DegreePolicy, SelectPolicy};

    #[test]
    fn empty_spec_is_one_base_run() {
        let spec = ScenarioSpec {
            name: "x".into(),
            ..ScenarioSpec::default()
        };
        assert_eq!(spec.run_count(), 1);
        let runs = spec.runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].knobs, Knobs::default());
        assert_eq!(runs[0].label(), "base");
    }

    #[test]
    fn cross_product_expansion() {
        let spec = ScenarioSpec {
            name: "xp".into(),
            sweep: Sweep {
                strategy: vec![
                    StrategySpec(Strategy::MinIo),
                    StrategySpec(Strategy::OptIoCpu),
                ],
                n_pes: vec![10, 20, 40],
                seed: vec![1, 2],
                ..Sweep::default()
            },
            ..ScenarioSpec::default()
        };
        assert_eq!(spec.run_count(), 12);
        let runs = spec.runs();
        assert_eq!(runs.len(), 12);
        // Deterministic order: strategy outermost, seed innermost.
        assert_eq!(runs[0].axis("strategy"), Some("MIN-IO"));
        assert_eq!(runs[0].axis("n_pes"), Some("10"));
        assert_eq!(runs[0].axis("seed"), Some("1"));
        assert_eq!(runs[1].axis("seed"), Some("2"));
        assert_eq!(runs[11].axis("strategy"), Some("OPT-IO-CPU"));
        assert_eq!(runs[11].knobs.n_pes, 40);
        assert_eq!(runs[11].knobs.seed, 2);
        // Every combination appears exactly once.
        let mut labels: Vec<String> = runs.iter().map(ScenarioRun::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn admission_axis_expands_like_strategy() {
        use sched::AdmissionPolicyKind;
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{
                "name": "adm",
                "base": { "mpl": 8 },
                "sweep": {
                    "admission": [
                        { "policy": "FcfsMpl" },
                        { "policy": "MemoryReservation", "mem_budget_frac": 0.8 },
                        { "policy": "Malleable", "priorities": [ { "class": "debit-credit", "weight": 8.0 } ] }
                    ],
                    "qps_per_pe": [0.1, 0.5]
                }
            }"#,
        )
        .unwrap();
        assert_eq!(spec.run_count(), 6);
        let runs = spec.runs();
        assert_eq!(runs[0].axis("admission"), Some("fcfs"));
        assert_eq!(runs[2].axis("admission"), Some("mem-resv(0.8)"));
        assert_eq!(runs[4].axis("admission"), Some("malleable(1.5)+prio"));
        assert_eq!(
            runs[4].knobs.admission.policy,
            AdmissionPolicyKind::Malleable
        );
        assert_eq!(runs[4].knobs.admission.weight_for("debit-credit"), 8.0);
        assert_eq!(runs[0].knobs.mpl, 8, "base mpl survives expansion");
        // Patch-level override composes too.
        let p = Patch {
            admission: Some(AdmissionConfig {
                policy: AdmissionPolicyKind::MemoryReservation,
                ..AdmissionConfig::default()
            }),
            mpl: Some(2),
            ..Patch::default()
        };
        assert_eq!(p.label(), "mpl=2,admission=mem-resv");
        let mut k = Knobs::default();
        p.apply(&mut k);
        assert_eq!(k.mpl, 2);
        assert_eq!(k.admission.policy, AdmissionPolicyKind::MemoryReservation);
    }

    #[test]
    fn paired_axis_applies_overrides_together() {
        let spec = ScenarioSpec {
            name: "pairs".into(),
            sweep: Sweep {
                paired: vec![
                    Patch {
                        selectivity: Some(0.001),
                        qps_per_pe: Some(1.0),
                        ..Patch::default()
                    },
                    Patch {
                        label: Some("big".into()),
                        selectivity: Some(0.05),
                        qps_per_pe: Some(0.035),
                        ..Patch::default()
                    },
                ],
                ..Sweep::default()
            },
            ..ScenarioSpec::default()
        };
        let runs = spec.runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].knobs.selectivity, 0.001);
        assert_eq!(runs[0].knobs.qps_per_pe, 1.0);
        assert_eq!(runs[0].axis("paired"), Some("sel=0.001,qps=1"));
        assert_eq!(runs[1].axis("paired"), Some("big"));
        assert_eq!(runs[1].knobs.qps_per_pe, 0.035);
    }

    #[test]
    fn strategy_spec_accepts_labels_and_tagged_values() {
        let s: StrategySpec = serde_json::from_str("\"pmu-cpu+LUM\"").unwrap();
        assert_eq!(
            s.0,
            Strategy::Isolated {
                degree: DegreePolicy::MU_CPU,
                select: SelectPolicy::Lum,
            }
        );
        let via_label = serde_json::to_string(&s).unwrap();
        assert_eq!(via_label, "\"pmu-cpu+LUM\"");
        let tagged: StrategySpec = serde_json::from_str("\"MIN-IO-SUOPT\"").unwrap();
        assert_eq!(tagged.0, Strategy::MinIoSuopt);
        assert!(serde_json::from_str::<StrategySpec>("\"nope\"").is_err());
    }

    #[test]
    fn knobs_default_via_serde_default() {
        // A spec that only names what it changes: everything else is the
        // paper default (this is the vendored #[serde(default)] path).
        let k: Knobs = serde_json::from_str(r#"{ "n_pes": 80, "qps_per_pe": 0.075 }"#).unwrap();
        assert_eq!(k.n_pes, 80);
        assert_eq!(k.qps_per_pe, 0.075);
        assert_eq!(k.buffer_pages, 50);
        assert_eq!(k.strategy, StrategySpec(Strategy::OptIoCpu));
        assert_eq!(k.seed, 0xC0FFEE);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec {
            name: "rt".into(),
            description: "round trip".into(),
            base: Knobs {
                workload: WorkloadShape::Mixed,
                oltp_nodes: NodeFilter::BNodes,
                oltp_modulation: Modulation::Burst {
                    factor: 4.0,
                    period_secs: 10.0,
                    duty: 0.25,
                },
                node_speed: NodeSpeed::SlowFraction {
                    fraction: 0.25,
                    factor: 0.5,
                },
                ..Knobs::default()
            },
            sweep: Sweep {
                strategy: vec![StrategySpec(Strategy::Adaptive)],
                n_pes: vec![20, 40],
                ..Sweep::default()
            },
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        assert_eq!(back.run_count(), 2);
    }

    #[test]
    fn workload_lowering_applies_skew_and_modulation() {
        let k = Knobs {
            workload: WorkloadShape::Mixed,
            skew_theta: 0.5,
            query_modulation: Modulation::Shift {
                factor: 2.0,
                at_secs: 15.0,
            },
            oltp_modulation: Modulation::Burst {
                factor: 3.0,
                period_secs: 8.0,
                duty: 0.5,
            },
            ..Knobs::default()
        };
        let wl = k.workload_spec();
        assert_eq!(wl.queries.len(), 1);
        assert_eq!(wl.oltp.len(), 1);
        assert_eq!(wl.queries[0].redistribution_skew, 0.5);
        assert!(matches!(wl.queries[0].modulation, Modulation::Shift { .. }));
        assert!(matches!(wl.oltp[0].modulation, Modulation::Burst { .. }));
    }

    #[test]
    fn node_speed_resolution() {
        assert!(NodeSpeed::Uniform.resolve(8).is_empty());
        let hetero = NodeSpeed::SlowFraction {
            fraction: 0.25,
            factor: 0.5,
        };
        let f = hetero.resolve(8);
        assert_eq!(f, vec![0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let explicit = NodeSpeed::Explicit(vec![1.0, 2.0]);
        assert_eq!(explicit.resolve(5), vec![1.0, 2.0, 1.0, 2.0, 1.0]);
        assert!(NodeSpeed::Explicit(Vec::new()).resolve(4).is_empty());
    }
}
