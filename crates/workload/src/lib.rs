//! # workload — multi-class workload model
//!
//! "We support heterogeneous (multi-class) workloads consisting of several
//! query and transaction types. […] Currently we support the following
//! query types: relation scan, clustered index scan, non-clustered index
//! scan, two-way join queries, multi-way join queries, and update
//! statements […] We also support the debit-credit benchmark workload
//! (TPC-B) and the use of real-life database traces. The simulation system
//! is an open queuing model and allows definition of an individual arrival
//! rate for each transaction and query type." (§4)
//!
//! * [`arrivals`] — open Poisson / deterministic arrival processes, plus a
//!   closed single-user mode (one client, zero think time) used for the
//!   paper's single-user baselines;
//! * [`queries`] — query class definitions (all six query types);
//! * [`oltp`] — debit-credit style OLTP classes with affinity routing;
//! * [`mix`] — ready-made workloads for each experiment of §5;
//! * [`scenario`] — declarative experiment scenarios: a serializable
//!   [`scenario::ScenarioSpec`] describing a base point plus
//!   parameter sweeps, expanded into labelled runs by the scenario lab;
//! * [`trace`] — a compact binary trace format (writer/reader/synthesizer)
//!   standing in for the real-life traces of \[18\] (see DESIGN.md).

pub mod arrivals;
pub mod mix;
pub mod oltp;
pub mod queries;
pub mod scenario;
pub mod trace;

pub use arrivals::{ArrivalProcess, ArrivalSpec, Modulation};
pub use mix::WorkloadSpec;
pub use oltp::{NodeFilter, OltpClass};
pub use queries::{CoordinatorPlacement, QueryClass, QueryKind};
pub use scenario::{Knobs, NodeSpeed, ScenarioRun, ScenarioSpec, StrategySpec, WorkloadShape};
