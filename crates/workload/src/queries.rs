//! Query classes: the six query types of §4.

use crate::arrivals::{ArrivalSpec, Modulation};
use dbmodel::RelationId;
use serde::{Deserialize, Serialize};

/// Where a query's coordinator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordinatorPlacement {
    /// "random allocation" — uniform over all PEs (the paper's default).
    Random,
    /// Pinned to one PE.
    Fixed(u32),
}

/// The database operation a query class performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryKind {
    /// Full scan of a relation with a selection predicate.
    RelationScan {
        relation: RelationId,
        selectivity: f64,
    },
    /// Range selection via the clustered B+-tree.
    ClusteredIndexScan {
        relation: RelationId,
        selectivity: f64,
    },
    /// Selection via a non-clustered B+-tree (random tuple accesses).
    NonClusteredIndexScan {
        relation: RelationId,
        selectivity: f64,
    },
    /// Two-way hash join: both inputs are reduced by clustered-index
    /// selections, then redistributed to the join processors (§2).
    TwoWayJoin {
        inner: RelationId,
        outer: RelationId,
        /// Selectivity applied to *both* inputs (Fig. 4 profile).
        selectivity: f64,
    },
    /// Left-deep chain of hash joins over ≥ 3 relations; intermediate
    /// results are redistributed between stages.
    MultiWayJoin {
        relations: Vec<RelationId>,
        selectivity: f64,
    },
    /// Parallel sort of a selection's output, redistributed to
    /// dynamically chosen sort processors (§7 extension).
    ParallelSort {
        relation: RelationId,
        selectivity: f64,
    },
    /// Index-supported update statement: select via index, modify, log.
    Update {
        relation: RelationId,
        tuples: u32,
        /// Use the index (true) or scan (false) to locate tuples.
        via_index: bool,
    },
}

impl QueryKind {
    /// Is this an operator the load balancer places (joins and sorts)?
    pub fn is_join(&self) -> bool {
        matches!(
            self,
            QueryKind::TwoWayJoin { .. }
                | QueryKind::MultiWayJoin { .. }
                | QueryKind::ParallelSort { .. }
        )
    }

    /// Does the query write (locks in exclusive mode, forces the log)?
    pub fn is_update(&self) -> bool {
        matches!(self, QueryKind::Update { .. })
    }
}

/// One query class of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryClass {
    pub name: String,
    pub kind: QueryKind,
    pub arrival: ArrivalSpec,
    /// Time-variation of the arrival rate (bursts, phase shifts);
    /// [`Modulation::None`] reproduces the paper's stationary streams.
    pub modulation: Modulation,
    pub coordinator: CoordinatorPlacement,
    /// Redistribution skew (Zipf theta over the join processors): the
    /// partitioning function sends unequal subjoin shares. 0.0 = uniform
    /// (the paper's base experiments); the §7 outlook studies skewed
    /// redistribution with size-aware subjoin placement.
    pub redistribution_skew: f64,
}

impl QueryClass {
    /// The paper's standard join query: selections on A and B via
    /// clustered indices, joined on the selection outputs.
    pub fn paper_join(selectivity: f64, arrival: ArrivalSpec) -> QueryClass {
        QueryClass {
            name: format!("join-{}%", selectivity * 100.0),
            kind: QueryKind::TwoWayJoin {
                inner: RelationId(0),
                outer: RelationId(1),
                selectivity,
            },
            arrival,
            modulation: Modulation::None,
            coordinator: CoordinatorPlacement::Random,
            redistribution_skew: 0.0,
        }
    }

    /// The paper join with a skewed partitioning function (§7 outlook).
    pub fn paper_join_skewed(selectivity: f64, arrival: ArrivalSpec, theta: f64) -> QueryClass {
        QueryClass {
            redistribution_skew: theta,
            ..QueryClass::paper_join(selectivity, arrival)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_classification() {
        let j = QueryKind::TwoWayJoin {
            inner: RelationId(0),
            outer: RelationId(1),
            selectivity: 0.01,
        };
        assert!(j.is_join());
        assert!(!j.is_update());
        let u = QueryKind::Update {
            relation: RelationId(0),
            tuples: 4,
            via_index: true,
        };
        assert!(u.is_update());
        assert!(!u.is_join());
        let s = QueryKind::RelationScan {
            relation: RelationId(0),
            selectivity: 0.5,
        };
        assert!(!s.is_join() && !s.is_update());
    }

    #[test]
    fn paper_join_profile() {
        let q = QueryClass::paper_join(0.01, ArrivalSpec::PoissonPerPe { rate: 0.25 });
        match &q.kind {
            QueryKind::TwoWayJoin {
                inner,
                outer,
                selectivity,
            } => {
                assert_eq!(*inner, RelationId(0));
                assert_eq!(*outer, RelationId(1));
                assert_eq!(*selectivity, 0.01);
            }
            _ => panic!(),
        }
        assert_eq!(q.coordinator, CoordinatorPlacement::Random);
    }

    #[test]
    fn serde_round_trip() {
        let q = QueryClass::paper_join(0.05, ArrivalSpec::SingleUser);
        let json = serde_json::to_string(&q).unwrap();
        let back: QueryClass = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
