//! Ready-made workload mixes for the paper's experiments.

use crate::arrivals::ArrivalSpec;
use crate::oltp::{NodeFilter, OltpClass};
use crate::queries::QueryClass;
use dbmodel::RelationId;
use serde::{Deserialize, Serialize};

/// A complete multi-class workload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadSpec {
    pub queries: Vec<QueryClass>,
    pub oltp: Vec<OltpClass>,
}

impl WorkloadSpec {
    /// Homogeneous multi-user join workload (§5.2): one join class with
    /// Poisson arrivals of `qps_per_pe` per PE.
    pub fn homogeneous_join(selectivity: f64, qps_per_pe: f64) -> WorkloadSpec {
        WorkloadSpec {
            queries: vec![QueryClass::paper_join(
                selectivity,
                ArrivalSpec::PoissonPerPe { rate: qps_per_pe },
            )],
            oltp: vec![],
        }
    }

    /// Homogeneous joins with a skewed redistribution (Zipf theta over
    /// the join processors) — the §7 skew-handling scenario.
    pub fn homogeneous_join_skewed(selectivity: f64, qps_per_pe: f64, theta: f64) -> WorkloadSpec {
        WorkloadSpec {
            queries: vec![QueryClass::paper_join_skewed(
                selectivity,
                ArrivalSpec::PoissonPerPe { rate: qps_per_pe },
                theta,
            )],
            oltp: vec![],
        }
    }

    /// Single-user join workload: one query in the system at a time.
    pub fn single_user_join(selectivity: f64) -> WorkloadSpec {
        WorkloadSpec {
            queries: vec![QueryClass::paper_join(selectivity, ArrivalSpec::SingleUser)],
            oltp: vec![],
        }
    }

    /// Heterogeneous workload of §5.3 / Fig. 9: multi-user joins plus
    /// debit-credit OLTP at `tps_per_node` on the chosen node set.
    /// `oltp_relation` must be a catalog relation disjoint from A and B.
    pub fn mixed(
        selectivity: f64,
        qps_per_pe: f64,
        oltp_relation: RelationId,
        tps_per_node: f64,
        oltp_nodes: NodeFilter,
    ) -> WorkloadSpec {
        WorkloadSpec {
            queries: vec![QueryClass::paper_join(
                selectivity,
                ArrivalSpec::PoissonPerPe { rate: qps_per_pe },
            )],
            oltp: vec![OltpClass::paper_oltp(
                oltp_relation,
                tps_per_node,
                oltp_nodes,
            )],
        }
    }

    /// Number of classes (for stream-id allocation).
    pub fn class_count(&self) -> usize {
        self.queries.len() + self.oltp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_has_one_join_class() {
        let w = WorkloadSpec::homogeneous_join(0.01, 0.25);
        assert_eq!(w.queries.len(), 1);
        assert!(w.oltp.is_empty());
        assert!(w.queries[0].kind.is_join());
    }

    #[test]
    fn single_user_uses_closed_arrivals() {
        let w = WorkloadSpec::single_user_join(0.01);
        assert!(w.queries[0].arrival.is_single_user());
    }

    #[test]
    fn mixed_matches_fig9() {
        let w = WorkloadSpec::mixed(0.01, 0.075, RelationId(2), 100.0, NodeFilter::BNodes);
        assert_eq!(w.class_count(), 2);
        assert_eq!(w.oltp[0].tps_per_node, 100.0);
        assert_eq!(w.oltp[0].nodes, NodeFilter::BNodes);
    }
}
