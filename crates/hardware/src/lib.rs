//! # hardware — Shared Nothing node hardware model
//!
//! Models the physical resources of one processing element (PE) and the
//! interconnect, following Section 4 ("Simulation model") and the Fig. 4
//! parameter table of Rahm & Marek, VLDB 1995:
//!
//! * [`Cpu`] — one FCFS service station with `cpus` units running at a
//!   configurable MIPS rate; all engine CPU requests are expressed in
//!   *instructions* and converted here;
//! * [`DiskSubsystem`] — per-PE disk servers, each with a controller
//!   providing an LRU page cache and *prefetching* for sequential access
//!   patterns (a miss reads `prefetch_pages` succeeding pages);
//! * [`Network`] — packetized message transmission with per-PE egress
//!   links (the CPU costs of send/receive/copy are charged by the engine,
//!   as in the paper; the wire itself is scalable, EDS-style).
//!
//! Everything is deterministic and scheduler-free: components hand back
//! completion times; the simulator owns the event loop.

pub mod cpu;
pub mod disk;
pub mod net;
pub mod params;

pub use cpu::Cpu;
pub use disk::{DiskId, DiskSubsystem, IoKind, IoRequest};
pub use net::Network;
pub use params::{CpuParams, DiskParams, HardwareParams, NetParams};
