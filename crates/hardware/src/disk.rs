//! Disk servers with controllers, LRU disk caches and prefetching.
//!
//! From §4: *"Disks and disk controllers have explicitly been modelled as
//! servers to capture potential I/O bottlenecks. Furthermore, disk
//! controllers can have a LRU disk cache. The disk controllers also provide
//! a prefetching mechanism to support sequential access patterns. If
//! prefetching is selected, a disk cache miss causes multiple succeeding
//! pages to be read from disk and allocated into the disk cache."*
//!
//! Each disk unit is one FCFS station whose service time composes the
//! controller work, the arm access (skipped on controller-cache hits) and
//! the page transmission. Because sequential readers issue their page
//! requests in order, folding controller and arm into one station preserves
//! the paper's per-page averages (e.g. a 4-page prefetch miss costs
//! 15 + 4·1 = 19 ms of arm time; the three following requests are cache
//! hits costing only controller + transmission time).

use crate::params::DiskParams;
use simkit::server::Grant;
use simkit::{FcfsServer, LruMap, Priority, SimDur, SimTime};

/// Index of a disk within one PE's subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId(pub u32);

/// Access pattern of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Sequential read (relation scans, clustered index scans, temporary
    /// file scans). Prefetching applies; `run_remaining` is the number of
    /// pages left in the sequential run *including* this page, so the
    /// controller never prefetches past the end of the file.
    SeqRead { run_remaining: u32 },
    /// Random single-page read (non-clustered index accesses).
    RandRead,
    /// Write of `pages` sequential pages (asynchronous buffer write-back,
    /// temporary file output, logging).
    Write { pages: u32 },
}

/// One I/O request against a page of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Opaque file/partition identity used for cache keying.
    pub object: u64,
    /// First page touched.
    pub page: u64,
    pub kind: IoKind,
}

/// Counters for one disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    pub reads: u64,
    pub writes: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub pages_read: u64,
    pub pages_written: u64,
}

struct DiskUnit<T> {
    server: FcfsServer<T>,
    cache: Option<LruMap<(u64, u64), ()>>,
    stats: DiskStats,
}

/// The disk subsystem of one PE: `disks_per_pe` independent disk servers.
pub struct DiskSubsystem<T> {
    params: DiskParams,
    units: Vec<DiskUnit<T>>,
}

impl<T> DiskSubsystem<T> {
    pub fn new(params: DiskParams) -> Self {
        assert!(params.disks_per_pe >= 1, "a PE needs at least one disk");
        let units = (0..params.disks_per_pe)
            .map(|_| DiskUnit {
                server: FcfsServer::new(1),
                cache: if params.cache_pages > 0 {
                    Some(LruMap::new(params.cache_pages))
                } else {
                    None
                },
                stats: DiskStats::default(),
            })
            .collect();
        DiskSubsystem { params, units }
    }

    pub fn disks(&self) -> u32 {
        self.units.len() as u32
    }

    /// Tags of all queued requests across every disk of the subsystem
    /// (see [`FcfsServer::queued_tags`]).
    pub fn queued_tags(&self) -> impl Iterator<Item = &T> {
        self.units.iter().flat_map(|u| u.server.queued_tags())
    }

    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Compute the service time of `req` on `disk` and update the cache.
    fn service_for(&mut self, disk: DiskId, req: &IoRequest) -> SimDur {
        let p = self.params.clone();
        let unit = &mut self.units[disk.0 as usize];
        match req.kind {
            IoKind::SeqRead { run_remaining } => {
                unit.stats.reads += 1;
                unit.stats.pages_read += 1;
                let hit = unit
                    .cache
                    .as_mut()
                    .map(|c| c.get(&(req.object, req.page)).is_some())
                    .unwrap_or(false);
                if hit {
                    unit.stats.cache_hits += 1;
                    p.controller_per_page + p.transmission_per_page
                } else {
                    unit.stats.cache_misses += 1;
                    let fetch = p.prefetch_pages.max(1).min(run_remaining.max(1));
                    if let Some(cache) = unit.cache.as_mut() {
                        for i in 0..fetch as u64 {
                            cache.insert((req.object, req.page + i), ());
                        }
                    }
                    p.base_access
                        + p.per_page_delay * fetch as u64
                        + p.controller_per_page
                        + p.transmission_per_page
                }
            }
            IoKind::RandRead => {
                unit.stats.reads += 1;
                unit.stats.pages_read += 1;
                let hit = unit
                    .cache
                    .as_mut()
                    .map(|c| c.get(&(req.object, req.page)).is_some())
                    .unwrap_or(false);
                if hit {
                    unit.stats.cache_hits += 1;
                    p.controller_per_page + p.transmission_per_page
                } else {
                    unit.stats.cache_misses += 1;
                    if let Some(cache) = unit.cache.as_mut() {
                        cache.insert((req.object, req.page), ());
                    }
                    p.base_access
                        + p.per_page_delay
                        + p.controller_per_page
                        + p.transmission_per_page
                }
            }
            IoKind::Write { pages } => {
                let pages = pages.max(1);
                unit.stats.writes += 1;
                unit.stats.pages_written += pages as u64;
                // Write-through into the controller cache: a temporary
                // partition read back soon after spilling may still hit.
                if let Some(cache) = unit.cache.as_mut() {
                    for i in 0..pages as u64 {
                        cache.insert((req.object, req.page + i), ());
                    }
                }
                p.base_access
                    + (p.per_page_delay + p.controller_per_page + p.transmission_per_page)
                        * pages as u64
            }
        }
    }

    /// Submit an I/O. Returns a grant (schedule its completion) or queues.
    pub fn request(
        &mut self,
        now: SimTime,
        disk: DiskId,
        req: IoRequest,
        tag: T,
    ) -> Option<Grant<T>> {
        let service = self.service_for(disk, &req);
        self.units[disk.0 as usize]
            .server
            .offer(now, service, Priority::Normal, tag)
    }

    /// An I/O completion fired on `disk`; returns the next grant if queued.
    pub fn complete(&mut self, now: SimTime, disk: DiskId) -> Option<Grant<T>> {
        self.units[disk.0 as usize].server.complete(now)
    }

    /// Average cumulative utilization across this PE's disks (read-only).
    pub fn utilization(&self, now: SimTime) -> f64 {
        let n = self.units.len() as f64;
        self.units
            .iter()
            .map(|u| u.server.utilization(now))
            .sum::<f64>()
            / n
    }

    /// Utilization of the busiest disk (bottleneck view; read-only).
    pub fn max_utilization(&self, now: SimTime) -> f64 {
        self.units
            .iter()
            .map(|u| u.server.utilization(now))
            .fold(0.0, f64::max)
    }

    /// Sum of busy integrals (unit-ns) for windowed reporting (read-only).
    pub fn busy_integral(&self, now: SimTime) -> u128 {
        self.units
            .iter()
            .map(|u| u.server.busy_integral_at(now))
            .sum()
    }

    /// Aggregate counters across disks.
    pub fn stats(&self) -> DiskStats {
        let mut agg = DiskStats::default();
        for u in &self.units {
            agg.reads += u.stats.reads;
            agg.writes += u.stats.writes;
            agg.cache_hits += u.stats.cache_hits;
            agg.cache_misses += u.stats.cache_misses;
            agg.pages_read += u.stats.pages_read;
            agg.pages_written += u.stats.pages_written;
        }
        agg
    }

    /// Pending + in-service request count over all disks.
    pub fn outstanding(&self) -> usize {
        self.units
            .iter()
            .map(|u| u.server.queued() + u.server.in_service() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDur::from_millis(ms)
    }

    fn subsystem() -> DiskSubsystem<u32> {
        DiskSubsystem::new(DiskParams::default())
    }

    fn seq(object: u64, page: u64, remaining: u32) -> IoRequest {
        IoRequest {
            object,
            page,
            kind: IoKind::SeqRead {
                run_remaining: remaining,
            },
        }
    }

    #[test]
    fn sequential_miss_costs_prefetch_access() {
        let mut d = subsystem();
        let g = d.request(at(0), DiskId(0), seq(1, 0, 100), 0).unwrap();
        // 15 + 4*1 + 1 + 0.4 = 20.4 ms
        assert_eq!(g.done, SimTime::ZERO + SimDur::from_micros(20_400));
        let s = d.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (0, 1));
    }

    #[test]
    fn prefetched_pages_hit_cache() {
        let mut d = subsystem();
        d.request(at(0), DiskId(0), seq(1, 0, 100), 0).unwrap();
        d.complete(at(21), DiskId(0));
        let g = d.request(at(21), DiskId(0), seq(1, 1, 99), 1).unwrap();
        // hit: 1 + 0.4 ms
        assert_eq!(g.done, at(21) + SimDur::from_micros(1_400));
        assert_eq!(d.stats().cache_hits, 1);
    }

    #[test]
    fn prefetch_clamped_to_run_end() {
        let mut d = subsystem();
        // Only 2 pages remain: prefetch must fetch 2, not 4.
        let g = d.request(at(0), DiskId(0), seq(1, 10, 2), 0).unwrap();
        // 15 + 2*1 + 1 + 0.4 = 18.4 ms
        assert_eq!(g.done, SimTime::ZERO + SimDur::from_micros(18_400));
        d.complete(at(19), DiskId(0));
        // Page 12 was NOT prefetched.
        let g2 = d.request(at(19), DiskId(0), seq(1, 12, 1), 1).unwrap();
        assert!(g2.done > at(19) + SimDur::from_millis(15));
    }

    #[test]
    fn random_read_costs_single_page_access() {
        let mut d = subsystem();
        let g = d
            .request(
                at(0),
                DiskId(3),
                IoRequest {
                    object: 9,
                    page: 77,
                    kind: IoKind::RandRead,
                },
                0,
            )
            .unwrap();
        // 15 + 1 + 1 + 0.4 = 17.4 ms
        assert_eq!(g.done, SimTime::ZERO + SimDur::from_micros(17_400));
    }

    #[test]
    fn write_batches_pages() {
        let mut d = subsystem();
        let g = d
            .request(
                at(0),
                DiskId(0),
                IoRequest {
                    object: 5,
                    page: 0,
                    kind: IoKind::Write { pages: 4 },
                },
                0,
            )
            .unwrap();
        // 15 + 4*(1 + 1 + 0.4) = 24.6 ms
        assert_eq!(g.done, SimTime::ZERO + SimDur::from_micros(24_600));
        assert_eq!(d.stats().pages_written, 4);
    }

    #[test]
    fn written_pages_can_hit_on_read_back() {
        let mut d = subsystem();
        d.request(
            at(0),
            DiskId(0),
            IoRequest {
                object: 5,
                page: 0,
                kind: IoKind::Write { pages: 2 },
            },
            0,
        )
        .unwrap();
        d.complete(at(25), DiskId(0));
        let g = d.request(at(25), DiskId(0), seq(5, 0, 2), 1).unwrap();
        assert_eq!(g.done, at(25) + SimDur::from_micros(1_400), "cache hit");
    }

    #[test]
    fn queueing_on_busy_disk() {
        let mut d = subsystem();
        assert!(d.request(at(0), DiskId(0), seq(1, 0, 8), 0).is_some());
        assert!(d.request(at(0), DiskId(0), seq(2, 0, 8), 1).is_none());
        assert_eq!(d.outstanding(), 2);
        let g = d.complete(at(21), DiskId(0)).unwrap();
        assert_eq!(g.tag, 1);
    }

    #[test]
    fn disks_are_independent() {
        let mut d = subsystem();
        assert!(d.request(at(0), DiskId(0), seq(1, 0, 8), 0).is_some());
        assert!(d.request(at(0), DiskId(1), seq(2, 0, 8), 1).is_some());
    }

    #[test]
    fn cache_disabled_when_zero_capacity() {
        let params = DiskParams {
            cache_pages: 0,
            ..DiskParams::default()
        };
        let mut d: DiskSubsystem<u8> = DiskSubsystem::new(params);
        d.request(at(0), DiskId(0), seq(1, 0, 100), 0).unwrap();
        d.complete(at(21), DiskId(0));
        let g = d.request(at(21), DiskId(0), seq(1, 1, 99), 1).unwrap();
        assert!(
            g.done > at(21) + SimDur::from_millis(15),
            "no cache → full access"
        );
    }

    #[test]
    fn utilization_accumulates() {
        let mut d = subsystem();
        d.request(at(0), DiskId(0), seq(1, 0, 4), 0).unwrap();
        d.complete(at(20), DiskId(0)); // ≈20.4ms busy, call it 20 for the test window
        let u = d.utilization(at(200));
        assert!(u > 0.0 && u < 0.02, "one busy disk of ten: {u}");
        let m = d.max_utilization(at(200));
        assert!(m > 0.09 && m < 0.11, "the busy disk itself: {m}");
    }
}
