//! Interconnection network.
//!
//! "The communication network models transmission of message packets of
//! fixed size. Messages exceeding the packet size (e.g., large sets of
//! result tuples) are disassembled into the required number of packets."
//! (§4)
//!
//! Each PE owns an egress link (FCFS): a message occupies its sender's link
//! for `packets × per_packet` and is delivered `latency` after the link
//! releases it. The fabric itself is contention-free (EDS-style scalable
//! interconnect); CPU costs for send/receive/copy are charged by the engine
//! per the Fig. 4 instruction table.

use crate::params::NetParams;
use simkit::server::Grant;
use simkit::{FcfsServer, Priority, SimDur, SimTime};

/// Per-system network state: one egress link per PE.
pub struct Network<T> {
    params: NetParams,
    egress: Vec<FcfsServer<T>>,
    msgs: u64,
    bytes: u64,
    packets: u64,
}

impl<T> Network<T> {
    pub fn new(params: NetParams, pes: usize) -> Self {
        Network {
            egress: (0..pes).map(|_| FcfsServer::new(1)).collect(),
            params,
            msgs: 0,
            bytes: 0,
            packets: 0,
        }
    }

    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Occupy `src`'s egress link for a message of `bytes`.
    ///
    /// The returned grant's `done` is the **link release** time; the message
    /// arrives at the receiver at `done + latency()` (the caller schedules
    /// the delivery event and must call [`Network::link_free`] at `done` to
    /// start any queued transmission).
    pub fn send(&mut self, now: SimTime, src: usize, bytes: u32, tag: T) -> Option<Grant<T>> {
        self.msgs += 1;
        self.bytes += bytes as u64;
        self.packets += self.params.packets(bytes) as u64;
        let wire = self.params.wire_time(bytes);
        self.egress[src].offer(now, wire, Priority::Normal, tag)
    }

    /// The egress link of `src` finished a transmission; returns the next
    /// queued transmission grant, if any.
    pub fn link_free(&mut self, now: SimTime, src: usize) -> Option<Grant<T>> {
        self.egress[src].complete(now)
    }

    /// Propagation latency added to every delivery.
    pub fn latency(&self) -> SimDur {
        self.params.latency
    }

    /// Cumulative utilization of one PE's egress link (read-only: the
    /// report-round sampler shares the fabric with in-flight sends).
    pub fn link_utilization(&self, now: SimTime, src: usize) -> f64 {
        self.egress[src].utilization(now)
    }

    /// Busy integral (unit-ns) of one PE's egress link, for windowed
    /// utilization reports to the control node (read-only).
    pub fn link_busy_integral(&self, now: SimTime, src: usize) -> u128 {
        self.egress[src].busy_integral_at(now)
    }

    /// Messages waiting on one PE's egress link (diagnostics).
    pub fn link_queued(&self, src: usize) -> usize {
        self.egress[src].queued()
    }

    pub fn messages_sent(&self) -> u64 {
        self.msgs
    }

    pub fn bytes_sent(&self) -> u64 {
        self.bytes
    }

    pub fn packets_sent(&self) -> u64 {
        self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_us(us: u64) -> SimTime {
        SimTime::ZERO + SimDur::from_micros(us)
    }

    #[test]
    fn wire_time_scales_with_packets() {
        let mut n: Network<u8> = Network::new(NetParams::default(), 4);
        // 8 KB = 64 packets × 6.4 us = 409.6 us
        let g = n.send(at_us(0), 0, 8192, 1).unwrap();
        assert_eq!(g.done, SimTime(4_096_000 / 10));
        assert_eq!(n.packets_sent(), 64);
    }

    #[test]
    fn small_message_is_one_packet() {
        let mut n: Network<u8> = Network::new(NetParams::default(), 2);
        let g = n.send(at_us(0), 1, 16, 1).unwrap();
        assert_eq!(g.done, SimTime::ZERO + SimDur::from_nanos(6_400));
        assert_eq!(n.packets_sent(), 1);
    }

    #[test]
    fn egress_serializes_per_sender() {
        let mut n: Network<u8> = Network::new(NetParams::default(), 2);
        assert!(n.send(at_us(0), 0, 128, 1).is_some());
        assert!(n.send(at_us(0), 0, 128, 2).is_none(), "queued");
        assert!(n.send(at_us(0), 1, 128, 3).is_some(), "other sender free");
        let g = n.link_free(at_us(7), 0).unwrap();
        assert_eq!(g.tag, 2);
    }

    #[test]
    fn counters() {
        let mut n: Network<u8> = Network::new(NetParams::default(), 2);
        n.send(at_us(0), 0, 300, 1);
        assert_eq!(n.messages_sent(), 1);
        assert_eq!(n.bytes_sent(), 300);
        assert_eq!(n.packets_sent(), 3);
    }
}
