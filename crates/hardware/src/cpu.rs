//! CPU service station of one PE.
//!
//! "The number of CPUs per PE and their capacity (in MIPS) are provided as
//! simulation parameters. The average number of instructions per request
//! can be defined separately for every request type." (§4)
//!
//! The engine expresses work in instructions; [`Cpu`] converts to service
//! time and queues requests FCFS (optionally prioritizing OLTP work).

use crate::params::CpuParams;
use simkit::server::Grant;
use simkit::{FcfsServer, Priority, SimTime};

/// CPU of one PE: `cpus_per_pe` identical units at `mips` each.
pub struct Cpu<T> {
    params: CpuParams,
    server: FcfsServer<T>,
    /// Total instructions requested (for reporting).
    instructions: u64,
}

impl<T> Cpu<T> {
    pub fn new(params: CpuParams) -> Self {
        let server = FcfsServer::new(params.cpus_per_pe);
        Cpu {
            params,
            server,
            instructions: 0,
        }
    }

    /// Request `instr` instructions of CPU service. On an idle unit the
    /// grant is returned immediately; otherwise the request queues.
    ///
    /// `oltp` requests jump the queue when `oltp_priority` is configured.
    pub fn request(&mut self, now: SimTime, instr: u64, oltp: bool, tag: T) -> Option<Grant<T>> {
        self.instructions += instr;
        let prio = if oltp && self.params.oltp_priority {
            Priority::High
        } else {
            Priority::Normal
        };
        self.server
            .offer(now, self.params.service(instr), prio, tag)
    }

    /// A service completion fired; returns the next grant if one was queued.
    pub fn complete(&mut self, now: SimTime) -> Option<Grant<T>> {
        self.server.complete(now)
    }

    /// Cumulative utilization in `[0, 1]` (read-only).
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.server.utilization(now)
    }

    /// Busy integral for windowed utilization reports to the control node
    /// (read-only: the report-round sampler shares the CPUs).
    pub fn busy_integral(&self, now: SimTime) -> u128 {
        self.server.busy_integral_at(now)
    }

    pub fn units(&self) -> u32 {
        self.params.cpus_per_pe
    }

    pub fn queued(&self) -> usize {
        self.server.queued()
    }

    /// Tags of all queued requests (see [`FcfsServer::queued_tags`]).
    pub fn queued_tags(&self) -> impl Iterator<Item = &T> {
        self.server.queued_tags()
    }

    pub fn in_service(&self) -> u32 {
        self.server.in_service()
    }

    pub fn total_instructions(&self) -> u64 {
        self.instructions
    }

    pub fn params(&self) -> &CpuParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDur;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDur::from_millis(ms)
    }

    #[test]
    fn serves_in_fcfs_order() {
        let mut cpu: Cpu<u32> = Cpu::new(CpuParams::default());
        // 20 MIPS: 20000 instr = 1 ms.
        let g = cpu.request(at(0), 20_000, false, 1).unwrap();
        assert_eq!(g.done, at(1));
        assert!(cpu.request(at(0), 20_000, false, 2).is_none());
        assert!(cpu.request(at(0), 20_000, false, 3).is_none());
        let g2 = cpu.complete(at(1)).unwrap();
        assert_eq!(g2.tag, 2);
        let g3 = cpu.complete(at(2)).unwrap();
        assert_eq!(g3.tag, 3);
        assert!(cpu.complete(at(3)).is_none());
    }

    #[test]
    fn oltp_priority_respected_when_enabled() {
        let params = CpuParams {
            oltp_priority: true,
            ..CpuParams::default()
        };
        let mut cpu: Cpu<&str> = Cpu::new(params);
        cpu.request(at(0), 20_000, false, "running");
        cpu.request(at(0), 20_000, false, "query");
        cpu.request(at(0), 20_000, true, "oltp");
        assert_eq!(cpu.complete(at(1)).unwrap().tag, "oltp");
    }

    #[test]
    fn oltp_priority_ignored_when_disabled() {
        let mut cpu: Cpu<&str> = Cpu::new(CpuParams::default());
        cpu.request(at(0), 20_000, false, "running");
        cpu.request(at(0), 20_000, false, "query");
        cpu.request(at(0), 20_000, true, "oltp");
        assert_eq!(cpu.complete(at(1)).unwrap().tag, "query");
    }

    #[test]
    fn tracks_instruction_totals_and_utilization() {
        let mut cpu: Cpu<()> = Cpu::new(CpuParams::default());
        cpu.request(at(0), 40_000, false, ()); // 2 ms
        cpu.complete(at(2));
        assert_eq!(cpu.total_instructions(), 40_000);
        let u = cpu.utilization(at(4));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multi_cpu_pe() {
        let params = CpuParams {
            cpus_per_pe: 2,
            ..CpuParams::default()
        };
        let mut cpu: Cpu<u8> = Cpu::new(params);
        assert!(cpu.request(at(0), 20_000, false, 1).is_some());
        assert!(cpu.request(at(0), 20_000, false, 2).is_some());
        assert!(cpu.request(at(0), 20_000, false, 3).is_none());
        assert_eq!(cpu.in_service(), 2);
    }
}
