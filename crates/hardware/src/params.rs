//! Hardware parameters with the defaults of the paper's Fig. 4.

use serde::{Deserialize, Serialize};
use simkit::SimDur;

/// CPU configuration of one PE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuParams {
    /// Number of CPUs per PE.
    pub cpus_per_pe: u32,
    /// CPU speed in MIPS (million instructions per second).
    pub mips: u32,
    /// Give OLTP transactions non-preemptive priority over query work at
    /// the CPU (local priority scheduling, §1 of the paper). Disabled by
    /// default: the paper's base experiments use plain FCFS.
    pub oltp_priority: bool,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            cpus_per_pe: 1,
            mips: 20,
            oltp_priority: false,
        }
    }
}

impl CpuParams {
    /// Service time for `instr` instructions on one CPU.
    #[inline]
    pub fn service(&self, instr: u64) -> SimDur {
        // instr / (mips * 1e6) seconds = instr * 1000 / mips nanoseconds.
        SimDur::from_nanos(instr * 1_000 / self.mips as u64)
    }
}

/// Disk subsystem configuration of one PE (Fig. 4 "disk devices").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Number of disk servers per PE.
    pub disks_per_pe: u32,
    /// Controller service time per page.
    pub controller_per_page: SimDur,
    /// Transmission time per page (controller → memory).
    pub transmission_per_page: SimDur,
    /// Base disk access time per I/O (seek + rotation).
    pub base_access: SimDur,
    /// Additional delay per page transferred from the platter.
    pub per_page_delay: SimDur,
    /// LRU disk cache capacity (pages) per controller; 0 disables caching.
    pub cache_pages: usize,
    /// Pages fetched per prefetch I/O for sequential access; 1 disables
    /// prefetching.
    pub prefetch_pages: u32,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            disks_per_pe: 10,
            controller_per_page: SimDur::from_millis(1),
            transmission_per_page: SimDur::from_micros(400),
            base_access: SimDur::from_millis(15),
            per_page_delay: SimDur::from_millis(1),
            cache_pages: 200,
            prefetch_pages: 4,
        }
    }
}

/// Interconnection network configuration, calibrated to the EDS prototype
/// (packet-switched, scalable; see DESIGN.md "Substitutions").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetParams {
    /// Fixed packet payload size in bytes.
    pub packet_bytes: u32,
    /// Wire time per packet on a link.
    pub per_packet: SimDur,
    /// Propagation + switching latency per message.
    pub latency: SimDur,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            packet_bytes: 128,
            // ≈ 20 MB/s per link: 128 B / 20 MB/s = 6.4 us.
            per_packet: SimDur::from_nanos(6_400),
            latency: SimDur::from_micros(50),
        }
    }
}

impl NetParams {
    /// Number of packets for a message of `bytes` (at least one).
    #[inline]
    pub fn packets(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.packet_bytes).max(1)
    }

    /// Pure wire time for a message of `bytes`.
    #[inline]
    pub fn wire_time(&self, bytes: u32) -> SimDur {
        SimDur::from_nanos(self.per_packet.as_nanos() * self.packets(bytes) as u64)
    }
}

/// All hardware parameters of the modelled system.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HardwareParams {
    pub cpu: CpuParams,
    pub disk: DiskParams,
    pub net: NetParams,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = HardwareParams::default();
        assert_eq!(p.cpu.mips, 20);
        assert_eq!(p.cpu.cpus_per_pe, 1);
        assert_eq!(p.disk.disks_per_pe, 10);
        assert_eq!(p.disk.base_access, SimDur::from_millis(15));
        assert_eq!(p.disk.cache_pages, 200);
        assert_eq!(p.disk.prefetch_pages, 4);
    }

    #[test]
    fn cpu_service_time() {
        let p = CpuParams::default();
        // 25000 instructions at 20 MIPS = 1.25 ms (query initialization).
        assert_eq!(p.service(25_000), SimDur::from_micros(1_250));
        // 500 instructions = 25 us (read a tuple).
        assert_eq!(p.service(500), SimDur::from_micros(25));
    }

    #[test]
    fn prefetch_access_time_matches_paper() {
        // "For a prefetching of 4 pages, the average disk access time is
        // 19 ms" — base 15 ms + 4 × 1 ms.
        let d = DiskParams::default();
        let access = d.base_access + d.per_page_delay * d.prefetch_pages as u64;
        assert_eq!(access, SimDur::from_millis(19));
    }

    #[test]
    fn packetization() {
        let n = NetParams::default();
        assert_eq!(n.packets(1), 1);
        assert_eq!(n.packets(128), 1);
        assert_eq!(n.packets(129), 2);
        assert_eq!(n.packets(8192), 64);
        assert_eq!(n.wire_time(8192), SimDur::from_nanos(64 * 6400));
    }
}
