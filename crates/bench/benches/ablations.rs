//! Ablation benchmarks for the design choices DESIGN.md calls out: each
//! pair runs the same workload with one mechanism toggled, and the metric
//! of interest is the *simulated* join response time (reported via
//! criterion's output through the returned value; wall time is secondary).
//!
//! Ablated mechanisms:
//! * adaptive feedback at the control node (LUC bump on/off),
//! * disk-controller caching + prefetching,
//! * OLTP CPU priority,
//! * control-information staleness (report interval 100 ms vs 2 s).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lb_core::{DegreePolicy, SelectPolicy, Strategy};
use simkit::SimDur;
use snsim::SimConfig;
use workload::WorkloadSpec;

fn base(n: u32) -> SimConfig {
    SimConfig::paper_default(
        n,
        WorkloadSpec::homogeneous_join(0.01, 0.2),
        Strategy::Isolated {
            degree: DegreePolicy::MU_CPU,
            select: SelectPolicy::Lum,
        },
    )
    .with_sim_time(SimDur::from_secs(8), SimDur::from_secs(2))
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    g.bench_function("feedback/on", |b| {
        b.iter(|| {
            let s = snsim::run_one(base(20));
            black_box((s.join_resp_ms(), s.events))
        })
    });
    g.bench_function("feedback/off", |b| {
        b.iter(|| {
            let mut cfg = base(20);
            cfg.luc_bump = 0.0;
            let s = snsim::run_one(cfg);
            black_box((s.join_resp_ms(), s.events))
        })
    });

    g.bench_function("disk_cache/on", |b| {
        b.iter(|| black_box(snsim::run_one(base(20)).join_resp_ms()))
    });
    g.bench_function("disk_cache/off", |b| {
        b.iter(|| {
            let mut cfg = base(20);
            cfg.hw.disk.cache_pages = 0;
            cfg.hw.disk.prefetch_pages = 1;
            black_box(snsim::run_one(cfg).join_resp_ms())
        })
    });

    g.bench_function("staleness/100ms", |b| {
        b.iter(|| black_box(snsim::run_one(base(20)).join_resp_ms()))
    });
    g.bench_function("staleness/2s", |b| {
        b.iter(|| {
            let mut cfg = base(20);
            cfg.control_interval = SimDur::from_secs(2);
            black_box(snsim::run_one(cfg).join_resp_ms())
        })
    });

    g.bench_function("oltp_priority/off", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_default(
                20,
                WorkloadSpec::mixed(
                    0.01,
                    0.05,
                    dbmodel::RelationId(2),
                    100.0,
                    workload::NodeFilter::BNodes,
                ),
                Strategy::OptIoCpu,
            )
            .with_disks(5)
            .with_sim_time(SimDur::from_secs(6), SimDur::from_secs(1));
            let s = snsim::run_one(cfg);
            black_box(s.oltp_resp_ms())
        })
    });
    g.bench_function("oltp_priority/on", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::paper_default(
                20,
                WorkloadSpec::mixed(
                    0.01,
                    0.05,
                    dbmodel::RelationId(2),
                    100.0,
                    workload::NodeFilter::BNodes,
                ),
                Strategy::OptIoCpu,
            )
            .with_disks(5)
            .with_sim_time(SimDur::from_secs(6), SimDur::from_secs(1));
            cfg.hw.cpu.oltp_priority = true;
            let s = snsim::run_one(cfg);
            black_box(s.oltp_resp_ms())
        })
    });

    g.finish();
}

/// §7 skew extension: uniform vs skewed redistribution, and size-aware
/// (LUM) vs blind (RANDOM) subjoin placement under skew.
fn bench_skew(c: &mut Criterion) {
    let mut g = c.benchmark_group("skew");
    g.sample_size(10);
    let mk = |theta: f64, select| {
        SimConfig::paper_default(
            20,
            if theta > 0.0 {
                WorkloadSpec::homogeneous_join_skewed(0.01, 0.15, theta)
            } else {
                WorkloadSpec::homogeneous_join(0.01, 0.15)
            },
            Strategy::Isolated {
                degree: DegreePolicy::MU_CPU,
                select,
            },
        )
        .with_sim_time(SimDur::from_secs(8), SimDur::from_secs(2))
    };
    g.bench_function("uniform/lum", |b| {
        b.iter(|| black_box(snsim::run_one(mk(0.0, SelectPolicy::Lum)).join_resp_ms()))
    });
    g.bench_function("zipf1/lum_size_aware", |b| {
        b.iter(|| black_box(snsim::run_one(mk(1.0, SelectPolicy::Lum)).join_resp_ms()))
    });
    g.bench_function("zipf1/random_blind", |b| {
        b.iter(|| black_box(snsim::run_one(mk(1.0, SelectPolicy::Random)).join_resp_ms()))
    });
    g.finish();
}

/// §6 baseline: RateMatch vs pmu-cpu at a hot operating point.
fn bench_ratematch(c: &mut Criterion) {
    let mut g = c.benchmark_group("ratematch");
    g.sample_size(10);
    let base = || {
        SimConfig::paper_default(
            40,
            WorkloadSpec::homogeneous_join(0.01, 0.25),
            Strategy::OptIoCpu,
        )
        .with_sim_time(SimDur::from_secs(8), SimDur::from_secs(2))
    };
    g.bench_function("pmu_cpu_lum", |b| {
        b.iter(|| {
            let mut cfg = base();
            cfg.strategy = Strategy::Isolated {
                degree: DegreePolicy::MU_CPU,
                select: SelectPolicy::Lum,
            };
            black_box(snsim::run_one(cfg).join_resp_ms())
        })
    });
    g.bench_function("ratematch_lum", |b| {
        b.iter(|| {
            let mut cfg = base();
            let params = cfg.cost_params();
            cfg.strategy = Strategy::Isolated {
                degree: DegreePolicy::RateMatch(params),
                select: SelectPolicy::Lum,
            };
            black_box(snsim::run_one(cfg).join_resp_ms())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablations, bench_skew, bench_ratematch);
criterion_main!(benches);
