//! Microbenchmarks of the simulation kernel: event heap, FCFS servers,
//! LRU, RNG, slab — the inner loops every simulated second rides on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simkit::server::Priority;
use simkit::{EventHeap, FcfsServer, LruMap, SimDur, SimRng, SimTime, Slab};

fn bench_event_heap(c: &mut Criterion) {
    c.bench_function("heap/push_pop_1k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<u64> = (0..1_000).map(|_| rng.below(1_000_000)).collect();
        b.iter(|| {
            let mut h = EventHeap::with_capacity(1_024);
            for (i, &t) in times.iter().enumerate() {
                h.push(SimTime(t), i);
            }
            let mut acc = 0usize;
            while let Some((_, v)) = h.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_fcfs_server(c: &mut Criterion) {
    c.bench_function("server/offer_complete_1k", |b| {
        b.iter(|| {
            let mut s: FcfsServer<u32> = FcfsServer::new(1);
            let mut now = SimTime::ZERO;
            for i in 0..1_000u32 {
                if s.offer(now, SimDur::from_micros(50), Priority::Normal, i)
                    .is_none()
                {
                    now += SimDur::from_micros(50);
                    black_box(s.complete(now));
                }
            }
            black_box(s.served())
        })
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru/mixed_ops_1k", |b| {
        let mut rng = SimRng::new(2);
        let keys: Vec<u64> = (0..1_000).map(|_| rng.below(300)).collect();
        b.iter(|| {
            let mut l: LruMap<u64, u32> = LruMap::new(200);
            let mut hits = 0u32;
            for &k in &keys {
                if l.get(&k).is_some() {
                    hits += 1;
                } else {
                    l.insert(k, 0);
                }
            }
            black_box(hits)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exp_1k", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += rng.exp(0.05);
            }
            black_box(acc)
        })
    });
    c.bench_function("rng/sample_distinct_30_of_80", |b| {
        let mut rng = SimRng::new(4);
        b.iter(|| black_box(rng.sample_distinct(80, 30)))
    });
}

fn bench_slab(c: &mut Criterion) {
    c.bench_function("slab/churn_1k", |b| {
        b.iter(|| {
            let mut s: Slab<u64> = Slab::new();
            let mut keys = Vec::with_capacity(64);
            for i in 0..1_000u64 {
                keys.push(s.insert(i));
                if keys.len() > 32 {
                    let k = keys.remove(0);
                    black_box(s.remove(k));
                }
            }
            black_box(s.len())
        })
    });
}

criterion_group!(
    benches,
    bench_event_heap,
    bench_fcfs_server,
    bench_lru,
    bench_rng,
    bench_slab
);
criterion_main!(benches);
