//! Whole-simulation benchmarks: short versions of each figure's
//! configuration, measuring simulator wall time (and implicitly events/s).
//! The actual figure series come from the `fig*` binaries; these benches
//! track the cost of regenerating them.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dbmodel::RelationId;
use lb_core::{DegreePolicy, SelectPolicy, Strategy};
use simkit::SimDur;
use snsim::SimConfig;
use workload::{NodeFilter, WorkloadSpec};

fn short(cfg: SimConfig) -> SimConfig {
    cfg.with_sim_time(SimDur::from_secs(5), SimDur::from_secs(1))
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig5_point_20pe_static", |b| {
        b.iter(|| {
            let cfg = short(SimConfig::paper_default(
                20,
                WorkloadSpec::homogeneous_join(0.01, 0.25),
                Strategy::Isolated {
                    degree: DegreePolicy::SuOpt,
                    select: SelectPolicy::Random,
                },
            ));
            black_box(snsim::run_one(cfg).events)
        })
    });

    g.bench_function("fig6_point_20pe_optiocpu", |b| {
        b.iter(|| {
            let cfg = short(SimConfig::paper_default(
                20,
                WorkloadSpec::homogeneous_join(0.01, 0.25),
                Strategy::OptIoCpu,
            ));
            black_box(snsim::run_one(cfg).events)
        })
    });

    g.bench_function("fig7_point_20pe_membound", |b| {
        b.iter(|| {
            let cfg = short(
                SimConfig::paper_default(
                    20,
                    WorkloadSpec::homogeneous_join(0.01, 0.05),
                    Strategy::MinIoSuopt,
                )
                .with_buffer_pages(5)
                .with_disks(1),
            );
            black_box(snsim::run_one(cfg).events)
        })
    });

    g.bench_function("fig8_point_small_join", |b| {
        b.iter(|| {
            let cfg = short(SimConfig::paper_default(
                20,
                WorkloadSpec::homogeneous_join(0.001, 1.0),
                Strategy::OptIoCpu,
            ));
            black_box(snsim::run_one(cfg).events)
        })
    });

    g.bench_function("fig9_point_20pe_mixed", |b| {
        b.iter(|| {
            let cfg = short(
                SimConfig::paper_default(
                    20,
                    WorkloadSpec::mixed(0.01, 0.075, RelationId(2), 100.0, NodeFilter::BNodes),
                    Strategy::OptIoCpu,
                )
                .with_disks(5),
            );
            black_box(snsim::run_one(cfg).events)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
