//! Future-event-list microbenchmarks: binary heap vs. calendar queue
//! under push/pop mixes shaped like real runs — a steady-state hold
//! (every pop schedules a successor, the simulator's common case), a
//! fill-then-drain sweep, and a heavy-tie burst (group commits and
//! control ticks land whole cohorts on one timestamp).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simkit::{CalendarQueue, EventHeap, SimRng, SimTime};

const LIVE: usize = 4_096;
const OPS: usize = 10_000;

/// Pre-generated inter-event gaps (exponential-ish via modulo mixing so
/// the two queues replay the identical schedule).
fn gaps(seed: u64) -> Vec<u64> {
    let mut rng = SimRng::new(seed);
    (0..OPS).map(|_| rng.below(200_000) + 1).collect()
}

macro_rules! bench_both {
    ($group:expr, $make_heap:expr, $make_cal:expr, $body:expr) => {{
        let g = &mut $group;
        g.bench_function("heap", |b| {
            b.iter(|| {
                let mut q = $make_heap;
                $body(&mut q)
            })
        });
        g.bench_function("calendar", |b| {
            b.iter(|| {
                let mut q = $make_cal;
                $body(&mut q)
            })
        });
    }};
}

/// Shared driver trait so one closure exercises both queues.
trait Fel {
    fn push(&mut self, t: SimTime, v: usize);
    fn pop(&mut self) -> Option<(SimTime, usize)>;
}

impl Fel for EventHeap<usize> {
    fn push(&mut self, t: SimTime, v: usize) {
        EventHeap::push(self, t, v)
    }
    fn pop(&mut self) -> Option<(SimTime, usize)> {
        EventHeap::pop(self)
    }
}

impl Fel for CalendarQueue<usize> {
    fn push(&mut self, t: SimTime, v: usize) {
        CalendarQueue::push(self, t, v)
    }
    fn pop(&mut self) -> Option<(SimTime, usize)> {
        CalendarQueue::pop(self)
    }
}

/// Steady state: `LIVE` events in flight, every pop schedules one
/// successor — the shape of a saturated simulation run.
fn steady_state<Q: Fel>(q: &mut Q) -> usize {
    let gaps = gaps(1);
    for (i, &g) in gaps[..LIVE].iter().enumerate() {
        q.push(SimTime(g), i);
    }
    let mut acc = 0usize;
    for &g in &gaps[LIVE..] {
        let (t, v) = q.pop().expect("live set never empties");
        acc = acc.wrapping_add(v);
        q.push(SimTime(t.as_nanos() + g), v);
    }
    black_box(acc)
}

/// Fill completely, then drain dry (arrival floods, end-of-run tails).
fn fill_drain<Q: Fel>(q: &mut Q) -> usize {
    let gaps = gaps(2);
    let mut t = 0u64;
    for (i, &g) in gaps.iter().enumerate() {
        t += g;
        q.push(SimTime(t), i);
    }
    let mut acc = 0usize;
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    black_box(acc)
}

/// Heavy ties: cohorts of 64 events share each timestamp (group commit /
/// control tick shape); FIFO order within a cohort is part of the
/// contract both queues must honor.
fn tie_burst<Q: Fel>(q: &mut Q) -> usize {
    let gaps = gaps(3);
    let mut t = 0u64;
    for (i, &g) in gaps.iter().enumerate() {
        if i % 64 == 0 {
            t += g;
        }
        q.push(SimTime(t), i);
    }
    let mut acc = 0usize;
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    black_box(acc)
}

fn bench_steady_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/steady_state_4k_live");
    bench_both!(
        g,
        EventHeap::with_capacity(LIVE),
        CalendarQueue::with_capacity(LIVE),
        steady_state
    );
    g.finish();
}

fn bench_fill_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/fill_drain_10k");
    bench_both!(
        g,
        EventHeap::with_capacity(OPS),
        CalendarQueue::with_capacity(OPS),
        fill_drain
    );
    g.finish();
}

fn bench_tie_burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/tie_burst_10k");
    bench_both!(
        g,
        EventHeap::with_capacity(OPS),
        CalendarQueue::with_capacity(OPS),
        tie_burst
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_steady_state,
    bench_fill_drain,
    bench_tie_burst
);
criterion_main!(benches);
