//! Broker order-statistics microbenchmarks: the control node's report →
//! ranked-read → assignment cycle at cluster sizes from the paper's 80
//! PEs up to 10 000, under both read modes. The incremental indices turn
//! the per-read O(n log n) sort + allocation into an O(log n) positional
//! repair plus an allocation-free view, which is the headline speedup of
//! the thousand-PE soak.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lb_core::{ControlNode, ReadMode, ResourceVector};

const SIZES: [usize; 3] = [80, 1_000, 10_000];

/// Triangle wave in [0, 1]: consecutive inputs move by ±1/p, like the
/// windowed utilizations a PE actually reports — smooth drift, no jumps.
fn tri(x: u64, p: u64) -> f64 {
    let m = x % (2 * p);
    let v = if m < p { m } else { 2 * p - m };
    v as f64 / p as f64
}

/// Smoothly drifting per-PE vector (each round nudges every key by one
/// step): the repair distance of the incremental indices stays O(1),
/// matching steady-state simulator behaviour.
fn vector(i: u64) -> ResourceVector {
    ResourceVector {
        cpu: tri(i, 97),
        disk: tri(i, 53),
        net: tri(i, 31),
        mem: tri(i, 11),
        free_pages: 10 + (i % 40) as u32,
    }
}

/// Adversarial vector: keys wrap modulo a small prime, so ~1% of nodes
/// leap across the entire ranking every round — the O(distance-moved)
/// worst case of positional repair.
fn vector_adversarial(i: u64) -> ResourceVector {
    ResourceVector {
        cpu: (i % 97) as f64 / 97.0,
        disk: (i % 53) as f64 / 53.0,
        net: (i % 31) as f64 / 31.0,
        mem: (i % 11) as f64 / 11.0,
        free_pages: 10 + (i % 40) as u32,
    }
}

fn warmed(n: usize, mode: ReadMode) -> ControlNode {
    let mut ctl = ControlNode::new(n);
    ctl.set_read_mode(mode);
    for pe in 0..n as u64 {
        ctl.report(pe as u32, vector(pe * 7));
    }
    ctl
}

/// One report round: every PE refreshes its vector (the per-tick cost).
fn bench_report(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker/report_round");
    for n in SIZES {
        for (label, mode) in [
            ("incremental", ReadMode::Incremental),
            ("sort_per_call", ReadMode::SortPerCall),
        ] {
            let mut ctl = warmed(n, mode);
            let mut round = 1u64;
            g.bench_function(&format!("{label}/n{n}"), |b| {
                b.iter(|| {
                    round += 1;
                    for pe in 0..n as u64 {
                        ctl.report(pe as u32, vector(pe * 7 + round));
                    }
                    black_box(ctl.len())
                })
            });
        }
    }
    g.finish();
}

/// Worst case for the incremental mode: every round a slice of nodes
/// teleports across the ranking, so each repair bubbles O(n) positions.
/// Kept honest in the suite — this is the pattern where sort-per-call's
/// do-nothing report wins, and reads have to pay it back.
fn bench_report_adversarial(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker/report_round_adversarial");
    let n = 1_000;
    for (label, mode) in [
        ("incremental", ReadMode::Incremental),
        ("sort_per_call", ReadMode::SortPerCall),
    ] {
        let mut ctl = warmed(n, mode);
        let mut round = 1u64;
        g.bench_function(&format!("{label}/n{n}"), |b| {
            b.iter(|| {
                round += 1;
                for pe in 0..n as u64 {
                    ctl.report(pe as u32, vector_adversarial(pe * 7 + round));
                }
                black_box(ctl.len())
            })
        });
    }
    g.finish();
}

/// One ranked read + assignment: the per-arrival placement cost.
fn bench_by_bottleneck(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker/by_bottleneck");
    for n in SIZES {
        for (label, mode) in [
            ("incremental", ReadMode::Incremental),
            ("sort_per_call", ReadMode::SortPerCall),
        ] {
            let mut ctl = warmed(n, mode);
            g.bench_function(&format!("{label}/n{n}"), |b| {
                b.iter(|| {
                    let head = ctl.by_bottleneck()[0].0;
                    ctl.note_assignment(&[head], 1);
                    black_box(head)
                })
            });
        }
    }
    g.finish();
}

/// The lazy top-k head read the coordinator policies actually issue
/// (incremental mode only: it never materializes the full ranking).
fn bench_ranked_head(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker/ranked_head");
    for n in SIZES {
        let mut ctl = warmed(n, ReadMode::Incremental);
        g.bench_function(&format!("incremental/n{n}"), |b| {
            b.iter(|| {
                let head = ctl
                    .ranked_bottleneck()
                    .map(|(id, _)| id)
                    .next()
                    .expect("non-empty");
                ctl.note_assignment(&[head], 1);
                black_box(head)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_report,
    bench_report_adversarial,
    bench_by_bottleneck,
    bench_ranked_head
);
criterion_main!(benches);
