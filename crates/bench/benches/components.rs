//! Component benchmarks: buffer manager, lock manager, deadlock detector,
//! B+-tree planning, disk subsystem, trace codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dbmodel::btree::{BTreeModel, ScanPlan};
use dbmodel::buffer::{BufferManager, JobMemKey};
use dbmodel::catalog::PageAddr;
use dbmodel::deadlock::find_victims;
use dbmodel::lock::{LockManager, LockMode, TxnToken};
use hardware::{DiskId, DiskParams, DiskSubsystem, IoKind, IoRequest};
use simkit::{SimRng, SimTime};
use workload::trace::{decode, encode, synthesize};

fn bench_buffer(c: &mut Criterion) {
    c.bench_function("buffer/fix_1k_with_working_space", |b| {
        let mut rng = SimRng::new(5);
        let pages: Vec<u64> = (0..1_000).map(|_| rng.below(200)).collect();
        b.iter(|| {
            let mut buf = BufferManager::new(50, 1);
            buf.reserve(JobMemKey(1), 4, 20);
            let mut misses = 0u32;
            for &p in &pages {
                if !matches!(
                    buf.fix(PageAddr::new(1, p), p % 7 == 0, p % 3 == 0),
                    dbmodel::buffer::FixOutcome::Hit
                ) {
                    misses += 1;
                }
            }
            buf.release_all(JobMemKey(1));
            black_box(misses)
        })
    });
}

fn bench_locks(c: &mut Criterion) {
    c.bench_function("locks/grant_release_200_txns", |b| {
        b.iter(|| {
            let mut lm = LockManager::new();
            for id in 0..200u64 {
                let t = TxnToken {
                    id,
                    birth: SimTime(id),
                };
                for k in 0..4 {
                    lm.lock(t, (id * 7 + k) % 251, LockMode::Exclusive);
                }
            }
            let mut grants = 0;
            for id in 0..200u64 {
                let t = TxnToken {
                    id,
                    birth: SimTime(id),
                };
                grants += lm.release_all(t).len();
            }
            black_box(grants)
        })
    });
}

fn bench_deadlock(c: &mut Criterion) {
    let mut rng = SimRng::new(6);
    let edges: Vec<(u64, u64)> = (0..500).map(|_| (rng.below(100), rng.below(100))).collect();
    let births: Vec<TxnToken> = (0..100)
        .map(|id| TxnToken {
            id,
            birth: SimTime(id),
        })
        .collect();
    c.bench_function("deadlock/detect_100_nodes_500_edges", |b| {
        b.iter(|| black_box(find_victims(&edges, &births)))
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("btree/plan_scans", |b| {
        b.iter(|| {
            let tree = BTreeModel::new(400, 1_000_000);
            let a = ScanPlan::clustered_index_scan(tree, 50_000, 1_000_000, 0.01);
            let b2 = ScanPlan::non_clustered_index_scan(tree, 1_000_000, 0.0001);
            black_box((a.total_pages(), b2.total_pages()))
        })
    });
}

fn bench_disk(c: &mut Criterion) {
    c.bench_function("disk/sequential_scan_256_pages", |b| {
        b.iter(|| {
            let mut d: DiskSubsystem<u32> = DiskSubsystem::new(DiskParams::default());
            let mut now = SimTime::ZERO;
            for p in 0..256u64 {
                let req = IoRequest {
                    object: 1,
                    page: p,
                    kind: IoKind::SeqRead {
                        run_remaining: (256 - p) as u32,
                    },
                };
                if let Some(g) = d.request(now, DiskId(0), req, p as u32) {
                    now = g.done;
                    d.complete(now, DiskId(0));
                }
            }
            black_box(d.stats().cache_hits)
        })
    });
}

fn bench_trace_codec(c: &mut Criterion) {
    let mut rng = SimRng::new(7);
    let records = synthesize(&mut rng, 10_000, 1_000.0, 0, 0, 64, 42);
    c.bench_function("trace/encode_decode_10k", |b| {
        b.iter(|| {
            let bytes = encode(&records);
            black_box(decode(bytes).expect("round trip").len())
        })
    });
}

/// Placement dispatch overhead: direct enum dispatch (`Strategy::place`)
/// vs the broker's trait-object path (`dyn PlacementPolicy` behind
/// `dyn ResourceBroker`). Confirms the Scheduler/ResourceBroker refactor
/// does not regress the placement hot path: the decision logic itself
/// (sorting AVAIL-MEMORY, eq. 3.3 scans) dominates the virtual calls.
fn bench_placement_dispatch(c: &mut Criterion) {
    use lb_core::control::ControlNode;
    use lb_core::{
        CentralBroker, JoinRequest, PlacementRequest, PolicyConfig, ResourceBroker, ResourceVector,
        Strategy,
    };

    const N: usize = 64;
    let req = JoinRequest {
        table_pages: 131.25,
        psu_opt: 30,
        psu_noio: 3,
        outer_scan_nodes: 32,
        inner_rel: 0,
        degree_cap: 0,
    };
    let fresh_ctl = || {
        let mut ctl = ControlNode::new(N);
        for i in 0..N {
            ctl.report(
                i as u32,
                ResourceVector {
                    cpu: 0.3,
                    free_pages: 40,
                    ..ResourceVector::default()
                },
            );
        }
        ctl
    };

    c.bench_function("placement/enum_dispatch_1k", |b| {
        let mut ctl = fresh_ctl();
        let strategy = Strategy::OptIoCpu;
        let mut rng = SimRng::new(11);
        b.iter(|| {
            let mut degrees = 0u64;
            for _ in 0..1_000 {
                degrees += strategy.place(&req, &mut ctl, &mut rng).degree() as u64;
            }
            black_box(degrees)
        })
    });

    c.bench_function("placement/trait_object_broker_1k", |b| {
        let mut broker: Box<dyn ResourceBroker> = Box::new(CentralBroker::from_config(
            N,
            0.05,
            40,
            Strategy::OptIoCpu,
            &PolicyConfig::default(),
        ));
        for i in 0..N as u32 {
            broker.report(
                i,
                ResourceVector {
                    cpu: 0.3,
                    free_pages: 40,
                    ..ResourceVector::default()
                },
            );
        }
        let preq = PlacementRequest::join(0, req, N as u32);
        let mut rng = SimRng::new(11);
        b.iter(|| {
            let mut degrees = 0u64;
            for _ in 0..1_000 {
                degrees += broker.place(&preq, &mut rng).degree() as u64;
            }
            black_box(degrees)
        })
    });
}

criterion_group!(
    benches,
    bench_buffer,
    bench_locks,
    bench_deadlock,
    bench_btree,
    bench_disk,
    bench_trace_codec,
    bench_placement_dispatch
);
criterion_main!(benches);
