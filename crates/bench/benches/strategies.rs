//! Placement-decision latency: the control-node code path each join query
//! takes at run time, per strategy, plus the analytic cost model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lb_core::costmodel::{paper_join_profile, CostModel, CostParams};
use lb_core::{ControlNode, DegreePolicy, JoinRequest, ResourceVector, SelectPolicy, Strategy};
use simkit::SimRng;

fn loaded_control(n: usize, seed: u64) -> ControlNode {
    let mut rng = SimRng::new(seed);
    let mut c = ControlNode::new(n);
    for i in 0..n {
        c.report(
            i as u32,
            ResourceVector {
                cpu: rng.f64(),
                net: rng.f64(),
                free_pages: rng.below(50) as u32,
                ..ResourceVector::default()
            },
        );
    }
    c
}

fn bench_placements(c: &mut Criterion) {
    let req = JoinRequest {
        table_pages: 131.25,
        psu_opt: 30,
        psu_noio: 3,
        outer_scan_nodes: 64,
        inner_rel: 0,
        degree_cap: 0,
    };
    for (name, strat) in [
        (
            "random",
            Strategy::Isolated {
                degree: DegreePolicy::SuOpt,
                select: SelectPolicy::Random,
            },
        ),
        (
            "lum",
            Strategy::Isolated {
                degree: DegreePolicy::MU_CPU,
                select: SelectPolicy::Lum,
            },
        ),
        ("min_io", Strategy::MinIo),
        ("min_io_suopt", Strategy::MinIoSuopt),
        ("opt_io_cpu", Strategy::OptIoCpu),
        ("adaptive", Strategy::Adaptive),
    ] {
        c.bench_function(&format!("place/{name}_80pe"), |b| {
            let mut ctl = loaded_control(80, 9);
            let mut rng = SimRng::new(10);
            b.iter(|| black_box(strat.place(&req, &mut ctl, &mut rng)))
        });
    }
}

fn bench_cost_model(c: &mut Criterion) {
    let model = CostModel::new(CostParams::default());
    let profile = paper_join_profile(80, 0.01);
    c.bench_function("costmodel/psu_opt_argmin_80", |b| {
        b.iter(|| black_box(model.psu_opt(80, &profile)))
    });
    c.bench_function("costmodel/rt_single_point", |b| {
        b.iter(|| black_box(model.rt_single_user(30, &profile)))
    });
}

criterion_group!(benches, bench_placements, bench_cost_model);
criterion_main!(benches);
