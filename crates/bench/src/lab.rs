//! The scenario-lab runner: execute declarative [`ScenarioSpec`]s and
//! collect labelled result rows.
//!
//! This is the engine behind `cargo run --release --bin lab` and behind
//! the thin `fig*` wrappers: a spec is expanded (`workload::scenario`),
//! lowered to configurations (`snsim::scenario`), fanned out over all
//! cores (`snsim::run_parallel`), and the per-run [`Summary`] values come
//! back as [`LabRow`]s carrying their sweep-axis labels. Results are
//! written under `results/<scenario>.runs.json` and
//! `results/<scenario>.csv` (the `.runs.json` suffix keeps lab output
//! from clobbering the legacy `results/<fig>.json` series files written
//! by [`crate::write_results_json`]).

use snsim::{run_parallel, SimConfig, Summary};
use std::path::{Path, PathBuf};
use workload::scenario::{ScenarioRun, ScenarioSpec};

/// Run-length selection for a whole scenario execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLength {
    /// Use each run's `sim_secs` / `warmup_secs` from the spec.
    Spec,
    /// Override with the long figure-quality runs (120 s / 20 s).
    Full,
    /// Override with very short smoke runs (8 s / 2 s) for CI.
    Smoke,
}

impl RunLength {
    /// Parse from process args (`--full`, `--smoke`).
    pub fn from_args() -> RunLength {
        let mut len = RunLength::Spec;
        for a in std::env::args() {
            match a.as_str() {
                "--full" => len = RunLength::Full,
                "--smoke" => len = RunLength::Smoke,
                _ => {}
            }
        }
        len
    }

    fn apply(self, cfg: SimConfig) -> SimConfig {
        use simkit::SimDur;
        match self {
            RunLength::Spec => cfg,
            RunLength::Full => cfg.with_sim_time(SimDur::from_secs(120), SimDur::from_secs(20)),
            RunLength::Smoke => cfg.with_sim_time(SimDur::from_secs(8), SimDur::from_secs(2)),
        }
    }
}

/// One completed run: its sweep-axis labels plus the simulator summary.
#[derive(Debug, Clone)]
pub struct LabRow {
    /// `(axis, value)` pairs in expansion order.
    pub axes: Vec<(String, String)>,
    /// Series key: the `strategy` axis value (or the base strategy
    /// label), with the `admission` axis value appended as
    /// `strategy@admission` when admission policies are swept.
    pub strategy: String,
    /// X key: all non-series axis values joined with `/` (`"base"` if
    /// nothing else was swept).
    pub x: String,
    /// The simulator's output for this run.
    pub summary: Summary,
}

impl LabRow {
    /// Value of one sweep axis, if it was swept.
    pub fn axis(&self, name: &str) -> Option<&str> {
        self.axes
            .iter()
            .find(|(a, _)| a == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a scenario spec from JSON text, defaulting an empty `name` to
/// `fallback_name` (the file stem).
pub fn parse_spec(json: &str, fallback_name: &str) -> Result<ScenarioSpec, String> {
    let mut spec: ScenarioSpec =
        serde_json::from_str(json).map_err(|e| format!("invalid scenario spec: {e}"))?;
    if spec.name.is_empty() {
        spec.name = fallback_name.to_string();
    }
    Ok(spec)
}

/// Load a scenario spec from a JSON file.
pub fn load_spec(path: &Path) -> Result<ScenarioSpec, String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("scenario");
    parse_spec(&json, stem)
}

fn row_keys(run: &ScenarioRun) -> (String, String) {
    let mut strategy = run
        .axis("strategy")
        .map(str::to_string)
        .unwrap_or_else(|| run.knobs.strategy.label());
    // A swept admission policy is a series dimension like the strategy:
    // figures compare "OPT-IO-CPU@fcfs" against "OPT-IO-CPU@malleable".
    if let Some(admission) = run.axis("admission") {
        strategy = format!("{strategy}@{admission}");
    }
    let rest: Vec<&str> = run
        .axes
        .iter()
        .filter(|(a, _)| a != "strategy" && a != "admission")
        .map(|(_, v)| v.as_str())
        .collect();
    let x = if rest.is_empty() {
        "base".to_string()
    } else {
        rest.join("/")
    };
    (strategy, x)
}

/// Execute every run of a scenario in parallel, preserving expansion
/// order in the returned rows.
pub fn run_scenario(spec: &ScenarioSpec, len: RunLength) -> Vec<LabRow> {
    let lowered = snsim::scenario::configs(spec);
    let (runs, cfgs): (Vec<ScenarioRun>, Vec<SimConfig>) = lowered
        .into_iter()
        .map(|(run, cfg)| (run, len.apply(cfg)))
        .unzip();
    let summaries = run_parallel(cfgs);
    runs.into_iter()
        .zip(summaries)
        .map(|(run, summary)| {
            let (strategy, x) = row_keys(&run);
            LabRow {
                axes: run.axes,
                strategy,
                x,
                summary,
            }
        })
        .collect()
}

/// Execute every run of a scenario **serially** with wall-clock phase
/// profiling enabled, merging the per-run phase breakdowns into one
/// report. Serial on purpose: profiling measures where the simulator
/// spends time, and concurrent runs on shared cores would distort every
/// number. Summaries are bit-identical to [`run_scenario`]'s.
pub fn run_scenario_profiled(
    spec: &ScenarioSpec,
    len: RunLength,
) -> (Vec<LabRow>, snsim::ProfileReport) {
    let lowered = snsim::scenario::configs(spec);
    let mut report = snsim::ProfileReport::empty();
    let rows = lowered
        .into_iter()
        .map(|(run, cfg)| {
            let (summary, r) = snsim::run_one_profiled(len.apply(cfg));
            report.merge(&r);
            let (strategy, x) = row_keys(&run);
            LabRow {
                axes: run.axes,
                strategy,
                x,
                summary,
            }
        })
        .collect();
    (rows, report)
}

/// Execute every run of a scenario **serially** with the observability
/// layer forced on, returning each run's trace output alongside its row.
/// Serial so a traced 1000-PE soak never holds more than one run's event
/// buffer at a time; summaries stay bit-identical to [`run_scenario`]'s
/// (the recorder only reads state — see `tests/obs_parity.rs`).
pub fn run_scenario_traced(spec: &ScenarioSpec, len: RunLength) -> Vec<(LabRow, obs::TraceOutput)> {
    let lowered = snsim::scenario::configs(spec);
    lowered
        .into_iter()
        .map(|(run, cfg)| {
            let mut cfg = len.apply(cfg);
            cfg.trace.enabled = true;
            let (summary, trace) = snsim::run_one_traced(cfg);
            let trace = trace.expect("trace enabled");
            let (strategy, x) = row_keys(&run);
            (
                LabRow {
                    axes: run.axes,
                    strategy,
                    x,
                    summary,
                },
                trace,
            )
        })
        .collect()
}

fn write_results_file(path: &PathBuf, contents: String) -> Option<PathBuf> {
    match std::fs::write(path, contents) {
        Ok(()) => Some(path.clone()),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Serialize every traced run's round samples to
/// `results/<name>.timeseries.json` (one entry per run, keyed by the
/// run's series/x labels; schema documented in README.md).
pub fn write_timeseries_json(name: &str, traced: &[(LabRow, obs::TraceOutput)]) -> Option<PathBuf> {
    let runs: Vec<serde_json::Value> = traced
        .iter()
        .map(|(row, t)| {
            serde_json::json!({
                "strategy": row.strategy,
                "x": row.x,
                "rounds_seen": t.timeseries.rounds_seen,
                "stride": t.timeseries.stride,
                "samples": t.timeseries.samples,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "scenario": name,
        "runs": serde_json::Value::Array(runs),
    });
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.timeseries.json"));
    match serde_json::to_string_pretty(&payload) {
        Ok(json) => write_results_file(&path, json),
        Err(e) => {
            eprintln!("warning: could not serialize {name} timeseries: {e}");
            None
        }
    }
}

/// Flatten every traced run's round samples to
/// `results/<name>.timeseries.csv`, one row per retained sample.
pub fn write_timeseries_csv(name: &str, traced: &[(LabRow, obs::TraceOutput)]) -> Option<PathBuf> {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "scenario,strategy,x,round,t_ms");
    for k in obs::KIND_NAMES {
        let _ = write!(out, ",{k}_avg");
    }
    for k in obs::KIND_NAMES {
        let _ = write!(out, ",{k}_p95");
    }
    let _ = writeln!(
        out,
        ",admission_backlog,mpl_backlog,oldest_wait_ms,live_nodes,suspected_nodes,\
         inflight_migrations,arrivals,rejections,shrunk,completions,policy"
    );
    for (row, t) in traced {
        for s in &t.timeseries.samples {
            let _ = write!(
                out,
                "{},{},{},{},{:.3}",
                csv_escape(name),
                csv_escape(&row.strategy),
                csv_escape(&row.x),
                s.round,
                s.t_ms,
            );
            for v in &s.util_avg {
                let _ = write!(out, ",{v:.4}");
            }
            for v in &s.util_p95 {
                let _ = write!(out, ",{v:.4}");
            }
            let _ = writeln!(
                out,
                ",{},{},{:.3},{},{},{},{},{},{},{},{}",
                s.admission_backlog,
                s.mpl_backlog,
                s.oldest_wait_ms,
                s.live_nodes,
                s.suspected_nodes,
                s.inflight_migrations,
                s.arrivals,
                s.rejections,
                s.shrunk,
                s.completions,
                csv_escape(&s.policy),
            );
        }
    }
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    write_results_file(&dir.join(format!("{name}.timeseries.csv")), out)
}

/// Serialize every traced run's placement-decision digest to
/// `results/<name>.explain.json`.
pub fn write_explain_json(name: &str, traced: &[(LabRow, obs::TraceOutput)]) -> Option<PathBuf> {
    let runs: Vec<serde_json::Value> = traced
        .iter()
        .map(|(row, t)| {
            serde_json::json!({
                "strategy": row.strategy,
                "x": row.x,
                "events_dropped": t.events_dropped,
                "explain": t.explain,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "scenario": name,
        "runs": serde_json::Value::Array(runs),
    });
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.explain.json"));
    match serde_json::to_string_pretty(&payload) {
        Ok(json) => write_results_file(&path, json),
        Err(e) => {
            eprintln!("warning: could not serialize {name} explain: {e}");
            None
        }
    }
}

/// Write every traced run's lifecycle events to
/// `results/<name>.trace.jsonl`. Runs are separated by a
/// `{"ev":"run",...}` header line so the stream stays one valid JSONL
/// file across a sweep.
pub fn write_trace_jsonl(name: &str, traced: &[(LabRow, obs::TraceOutput)]) -> Option<PathBuf> {
    use std::fmt::Write;
    let mut out = String::new();
    for (row, t) in traced {
        let header = serde_json::json!({
            "ev": "run",
            "strategy": row.strategy,
            "x": row.x,
            "events": t.events.len() as u64,
            "events_dropped": t.events_dropped,
        });
        let _ = writeln!(
            out,
            "{}",
            serde_json::to_string(&header).unwrap_or_default()
        );
        for line in &t.events {
            let _ = writeln!(out, "{line}");
        }
    }
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    write_results_file(&dir.join(format!("{name}.trace.jsonl")), out)
}

/// Print the `--explain` digest: per run, per policy — decision counts,
/// win margins between the best and runner-up candidate scores, and the
/// top-K "why node X" winner table.
pub fn print_explain(name: &str, traced: &[(LabRow, obs::TraceOutput)]) {
    for (row, t) in traced {
        println!("== explain `{name}` {}@{}", row.strategy, row.x);
        if t.explain.is_empty() {
            println!("   (no placement decisions recorded)");
            continue;
        }
        for e in &t.explain {
            println!(
                "   policy {:>12}: {} decisions, margin mean {:.4} (min {:.4}, max {:.4}), \
                 {} clear wins",
                e.policy, e.decisions, e.margin_mean, e.margin_min, e.margin_max, e.clear_wins
            );
            for n in &e.top_nodes {
                println!(
                    "      node {:>4}: {} wins, mean bottleneck at win {:.4}",
                    n.node, n.wins, n.mean_score_at_win
                );
            }
        }
        if t.events_dropped > 0 {
            println!(
                "   ({} events dropped past the retention cap)",
                t.events_dropped
            );
        }
    }
}

/// Serialize a profile report to `results/<name>.profile.json`.
pub fn write_profile_json(name: &str, report: &snsim::ProfileReport) -> Option<PathBuf> {
    let rows: Vec<serde_json::Value> = report
        .rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "phase": r.phase,
                "calls": r.calls,
                "secs": r.secs,
                "share": if report.total_wall_secs > 0.0 {
                    r.secs / report.total_wall_secs
                } else {
                    0.0
                },
            })
        })
        .collect();
    let payload = serde_json::json!({
        "scenario": name,
        "runs": report.runs,
        "total_wall_secs": report.total_wall_secs,
        "phases": serde_json::Value::Array(rows),
    });
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.profile.json"));
    match serde_json::to_string_pretty(&payload) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: could not serialize {name} profile: {e}");
            None
        }
    }
}

/// Group rows into figure-style series: one series per strategy key, one
/// x-entry per distinct x key, both in first-appearance order. `metric`
/// extracts the plotted value.
pub fn series_by_strategy(
    rows: &[LabRow],
    metric: impl Fn(&Summary) -> f64,
) -> (Vec<String>, Vec<(String, Vec<f64>)>) {
    let mut xs: Vec<String> = Vec::new();
    for row in rows {
        if !xs.contains(&row.x) {
            xs.push(row.x.clone());
        }
    }
    // xs is complete at this point, so every series vector can be
    // allocated at its final length up front.
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for row in rows {
        let xi = xs.iter().position(|x| *x == row.x).expect("x registered");
        let entry = match series.iter_mut().find(|(name, _)| *name == row.strategy) {
            Some(e) => e,
            None => {
                series.push((row.strategy.clone(), vec![f64::NAN; xs.len()]));
                series.last_mut().expect("just pushed")
            }
        };
        entry.1[xi] = metric(&row.summary);
    }
    (xs, series)
}

/// Convert lab rows to the `(series, points)` shape of
/// [`crate::write_results_json`], grouping by strategy.
pub fn rows_by_strategy(rows: &[LabRow]) -> Vec<(String, Vec<Summary>)> {
    let mut grouped: Vec<(String, Vec<Summary>)> = Vec::new();
    for row in rows {
        match grouped.iter_mut().find(|(name, _)| *name == row.strategy) {
            Some((_, sums)) => sums.push(row.summary.clone()),
            None => grouped.push((row.strategy.clone(), vec![row.summary.clone()])),
        }
    }
    grouped
}

/// Print the scenario's headline table (join response time, plus OLTP
/// response time when any run has an OLTP class).
pub fn print_tables(spec: &ScenarioSpec, rows: &[LabRow]) {
    let (xs, series) = series_by_strategy(rows, Summary::join_resp_ms);
    println!(
        "{}",
        snsim::format_table(
            &format!("{} — join response time [ms]", spec.name),
            "x",
            &xs,
            &series,
        )
    );
    if rows.iter().any(|r| r.summary.oltp_resp_ms().is_some()) {
        let (xs, series) = series_by_strategy(rows, |s| s.oltp_resp_ms().unwrap_or(f64::NAN));
        println!(
            "{}",
            snsim::format_table(
                &format!("{} — OLTP response time [ms]", spec.name),
                "x",
                &xs,
                &series,
            )
        );
    }
}

/// Serialize rows (axes + full summaries) to `results/<name>.runs.json`.
pub fn write_lab_json(name: &str, rows: &[LabRow]) -> Option<PathBuf> {
    let payload: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "axes": serde_json::Value::Object(
                    r.axes
                        .iter()
                        .map(|(a, v)| (a.clone(), serde_json::Value::Str(v.clone())))
                        .collect(),
                ),
                "strategy": r.strategy,
                "x": r.x,
                "summary": r.summary,
            })
        })
        .collect();
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.runs.json"));
    match serde_json::to_string_pretty(&payload) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: could not serialize {name}: {e}");
            None
        }
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write the headline metrics to `results/<name>.csv`, one row per run
/// with one column per sweep axis.
pub fn write_lab_csv(name: &str, rows: &[LabRow]) -> Option<PathBuf> {
    use std::fmt::Write;
    // The strategy axis gets its own fixed column below.
    let axis_names: Vec<String> = rows
        .first()
        .map(|r| {
            r.axes
                .iter()
                .map(|(a, _)| a.clone())
                .filter(|a| a != "strategy")
                .collect()
        })
        .unwrap_or_default();
    let mut out = String::new();
    let _ = write!(out, "scenario");
    for a in &axis_names {
        let _ = write!(out, ",{}", csv_escape(a));
    }
    let _ = writeln!(
        out,
        ",strategy,n_pes,join_resp_ms,oltp_resp_ms,avg_cpu_util,avg_disk_util,\
         avg_mem_util,avg_net_util,p95_cpu_util,p95_mem_util,p95_disk_util,\
         p95_net_util,avg_join_degree,policy_switches,events,\
         stale_reads_p95_ms,false_suspicions,suspected_node_rounds,\
         windows_formed,windowed_events,barrier_events"
    );
    for r in rows {
        let _ = write!(out, "{}", csv_escape(name));
        for a in &axis_names {
            let v = r
                .axes
                .iter()
                .find(|(name, _)| name == a)
                .map(|(_, v)| v.as_str())
                .unwrap_or("");
            let _ = write!(out, ",{}", csv_escape(v));
        }
        let s = &r.summary;
        let oltp = s
            .oltp_resp_ms()
            .map(|v| format!("{v:.3}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            ",{},{},{:.3},{oltp},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.3},{},{},\
             {:.1},{},{},{},{},{}",
            csv_escape(&r.strategy),
            s.n_pes,
            s.join_resp_ms(),
            s.avg_cpu_util,
            s.avg_disk_util,
            s.avg_mem_util,
            s.avg_net_util,
            s.p95_cpu_util,
            s.p95_mem_util,
            s.p95_disk_util,
            s.p95_net_util,
            s.avg_join_degree,
            s.policy_switches,
            s.events,
            s.stale_reads_p95_ms,
            s.false_suspicions,
            s.suspected_node_rounds,
            s.windows_formed,
            s.windowed_events,
            s.barrier_events,
        );
    }
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, out) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Run a bundled figure spec (embedded JSON) and return its rows: the
/// shared path of the thin `fig*` wrappers.
pub fn run_embedded(json: &str, name: &str, len: RunLength) -> (ScenarioSpec, Vec<LabRow>) {
    let spec = parse_spec(json, name).unwrap_or_else(|e| panic!("bundled spec {name}: {e}"));
    let rows = run_scenario(&spec, len);
    (spec, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::scenario::{Knobs, StrategySpec, Sweep};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny".into(),
            base: Knobs {
                n_pes: 10,
                sim_secs: 4.0,
                warmup_secs: 1.0,
                ..Knobs::default()
            },
            sweep: Sweep {
                strategy: vec![
                    StrategySpec(lb_core::Strategy::MinIo),
                    StrategySpec(lb_core::Strategy::OptIoCpu),
                ],
                n_pes: vec![10, 20],
                ..Sweep::default()
            },
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn scenario_rows_carry_axes_and_group_into_series() {
        let spec = tiny_spec();
        let rows = run_scenario(&spec, RunLength::Spec);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.summary.events > 0));
        let (xs, series) = series_by_strategy(&rows, Summary::join_resp_ms);
        assert_eq!(xs, vec!["10", "20"]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, "MIN-IO");
        assert_eq!(series[1].0, "OPT-IO-CPU");
        assert!(series.iter().all(|(_, ys)| ys.len() == 2));
        let grouped = rows_by_strategy(&rows);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].1.len(), 2);
    }

    #[test]
    fn spec_name_falls_back_to_file_stem() {
        let spec = parse_spec("{}", "from-file").unwrap();
        assert_eq!(spec.name, "from-file");
        assert_eq!(spec.run_count(), 1);
        assert!(parse_spec("{", "x").is_err());
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }
}
