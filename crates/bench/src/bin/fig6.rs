//! Fig. 6 — "Dynamic degree of join parallelism"
//! (multi-user join 0.25 QPS/PE; 1% scan selectivity).
//!
//! Series: MIN-IO, MIN-IO-SUOPT, p_mu-cpu+RANDOM, p_mu-cpu+LUM,
//! OPT-IO-CPU, plus the single-user baseline. X-axis: 10..80 PE.
//!
//! Run: `cargo run --release -p bench --bin fig6 [--full]`

use bench::{check, with_mode, write_results_json, Mode, PE_SWEEP};
use lb_core::{DegreePolicy, SelectPolicy, Strategy};
use snsim::{format_table, run_parallel, SimConfig};
use workload::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut raw = Vec::new();

    for strat in Strategy::fig6_set() {
        let cfgs: Vec<SimConfig> = PE_SWEEP
            .iter()
            .map(|&n| {
                with_mode(
                    SimConfig::paper_default(n, WorkloadSpec::homogeneous_join(0.01, 0.25), strat),
                    mode,
                )
            })
            .collect();
        let sums = run_parallel(cfgs);
        series.push((
            strat.name().to_string(),
            sums.iter().map(|s| s.join_resp_ms()).collect(),
        ));
        raw.push((strat.name().to_string(), sums));
    }
    // Single-user baseline.
    let su = Strategy::Isolated {
        degree: DegreePolicy::SuOpt,
        select: SelectPolicy::Random,
    };
    let cfgs: Vec<SimConfig> = PE_SWEEP
        .iter()
        .map(|&n| {
            with_mode(
                SimConfig::paper_default(n, WorkloadSpec::single_user_join(0.01), su),
                mode,
            )
        })
        .collect();
    let sums = run_parallel(cfgs);
    series.push((
        "single-user(psu-opt)".into(),
        sums.iter().map(|s| s.join_resp_ms()).collect(),
    ));
    raw.push(("single-user(psu-opt)".into(), sums));

    let xs: Vec<String> = PE_SWEEP.iter().map(|n| n.to_string()).collect();
    println!(
        "{}",
        format_table(
            "Fig. 6 — dynamic degree of join parallelism: join response time [ms]",
            "#PE",
            &xs,
            &series,
        )
    );

    // Qualitative claims from §5.2.
    let get =
        |name: &str| -> &Vec<f64> { &series.iter().find(|(n, _)| n == name).expect("series").1 };
    let last = PE_SWEEP.len() - 1;
    check(
        "MIN-IO and MIN-IO-SUOPT are the worst dynamic strategies at 80 PE",
        get("MIN-IO")[last] > get("pmu-cpu+LUM")[last]
            && get("MIN-IO-SUOPT")[last] > get("pmu-cpu+LUM")[last],
    );
    check(
        "pmu-cpu+LUM beats pmu-cpu+RANDOM (state-aware selection wins)",
        get("pmu-cpu+LUM")[last] <= get("pmu-cpu+RANDOM")[last] * 1.05,
    );
    check(
        "OPT-IO-CPU is competitive with pmu-cpu+LUM (within 20%)",
        get("OPT-IO-CPU")[last] <= get("pmu-cpu+LUM")[last] * 1.2,
    );
    check(
        "CPU-aware reduction keeps 80-PE multi-user response times acceptable \
         (best CPU-aware scheme < 8x single-user; CPU-blind schemes diverge)",
        get("pmu-cpu+LUM")[last].min(get("OPT-IO-CPU")[last])
            <= get("single-user(psu-opt)")[last] * 8.0,
    );

    write_results_json("fig6", &raw);
}
