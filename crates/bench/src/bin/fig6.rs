//! Fig. 6 — "Dynamic degree of join parallelism"
//! (multi-user join 0.25 QPS/PE; 1% scan selectivity).
//!
//! Thin wrapper over the bundled `scenarios/fig6.json` and
//! `scenarios/single_user_baseline.json` specs: the scenario lab runs the
//! sweep, this binary re-checks the paper's qualitative claims.
//!
//! Run: `cargo run --release -p bench --bin fig6 [--full]`

use bench::lab::{self, RunLength};
use bench::{check, write_results_json};
use snsim::{format_table, Summary};

const SPEC: &str = include_str!("../../../../scenarios/fig6.json");
const BASELINE: &str = include_str!("../../../../scenarios/single_user_baseline.json");

fn main() {
    let len = RunLength::from_args();
    let (_, mut rows) = lab::run_embedded(SPEC, "fig6", len);
    let (_, baseline) = lab::run_embedded(BASELINE, "single_user_baseline", len);
    for mut row in baseline {
        row.strategy = "single-user(psu-opt)".into();
        rows.push(row);
    }

    let (xs, series) = lab::series_by_strategy(&rows, Summary::join_resp_ms);
    println!(
        "{}",
        format_table(
            "Fig. 6 — dynamic degree of join parallelism: join response time [ms]",
            "#PE",
            &xs,
            &series,
        )
    );

    // Qualitative claims from §5.2.
    let get =
        |name: &str| -> &Vec<f64> { &series.iter().find(|(n, _)| n == name).expect("series").1 };
    let last = xs.len() - 1;
    check(
        "MIN-IO and MIN-IO-SUOPT are the worst dynamic strategies at 80 PE",
        get("MIN-IO")[last] > get("pmu-cpu+LUM")[last]
            && get("MIN-IO-SUOPT")[last] > get("pmu-cpu+LUM")[last],
    );
    check(
        "pmu-cpu+LUM beats pmu-cpu+RANDOM (state-aware selection wins)",
        get("pmu-cpu+LUM")[last] <= get("pmu-cpu+RANDOM")[last] * 1.05,
    );
    check(
        "OPT-IO-CPU is competitive with pmu-cpu+LUM (within 20%)",
        get("OPT-IO-CPU")[last] <= get("pmu-cpu+LUM")[last] * 1.2,
    );
    check(
        "CPU-aware reduction keeps 80-PE multi-user response times acceptable \
         (best CPU-aware scheme < 8x single-user; CPU-blind schemes diverge)",
        get("pmu-cpu+LUM")[last].min(get("OPT-IO-CPU")[last])
            <= get("single-user(psu-opt)")[last] * 8.0,
    );

    write_results_json("fig6", &lab::rows_by_strategy(&rows));
}
