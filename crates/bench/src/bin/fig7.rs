//! Fig. 7 — "Memory-bound environment" (1% scan selectivity).
//!
//! Thin wrapper over `scenarios/fig7.json` (multi-user arrival-rate ×
//! strategy × system-size sweep with buffer/10 and one disk per PE) and
//! `scenarios/fig7_baseline.json` (the single-user baseline). The table
//! also reports the average degree of join parallelism — the paper's
//! headline here is that MIN-IO-SUOPT *raises* the degree with the system
//! size to buy aggregate memory, while p_mu-cpu stays at p_su-opt.
//!
//! Run: `cargo run --release -p bench --bin fig7 [--full]`

use bench::lab::{self, LabRow, RunLength};
use bench::{check, write_results_json};
use snsim::{format_table, Summary};

const SPEC: &str = include_str!("../../../../scenarios/fig7.json");
const BASELINE: &str = include_str!("../../../../scenarios/fig7_baseline.json");

/// Relabel rows as `<load>/<strategy>` series over the `n_pes` axis.
fn relabel(rows: Vec<LabRow>, load: impl Fn(&LabRow) -> String) -> Vec<LabRow> {
    rows.into_iter()
        .map(|mut r| {
            r.strategy = format!("{}/{}", load(&r), r.strategy);
            r.x = r.axis("n_pes").expect("n_pes axis").to_string();
            r
        })
        .collect()
}

fn main() {
    let len = RunLength::from_args();
    let (_, mu_rows) = lab::run_embedded(SPEC, "fig7", len);
    let (_, su_rows) = lab::run_embedded(BASELINE, "fig7_baseline", len);
    let mut rows = relabel(su_rows, |_| "su".into());
    rows.extend(relabel(mu_rows, |r| {
        format!("mu-{}", r.axis("qps_per_pe").expect("qps axis"))
    }));

    let (xs, series) = lab::series_by_strategy(&rows, Summary::join_resp_ms);
    let (_, degree_series) = lab::series_by_strategy(&rows, |s| s.avg_join_degree);
    println!(
        "{}",
        format_table(
            "Fig. 7 — memory-bound environment (buffer/10, 1 disk/PE): join response time [ms]",
            "#PE",
            &xs,
            &series,
        )
    );
    println!(
        "{}",
        format_table(
            "Fig. 7 annotation — average degree of join parallelism",
            "#PE",
            &xs,
            &degree_series,
        )
    );

    let get = |name: &str, v: &[(String, Vec<f64>)]| -> Vec<f64> {
        v.iter().find(|(n, _)| n == name).expect("series").1.clone()
    };
    let last = xs.len() - 1;
    check(
        "multi-user 0.05: MIN-IO-SUOPT beats pmu-cpu+LUM at one or more \
         system sizes (our degree overshoots the paper's 42 at 60–80 PE, \
         trading some of the win back — see EXPERIMENTS.md)",
        get("mu-0.05/MIN-IO-SUOPT", &series)
            .iter()
            .zip(get("mu-0.05/pmu-cpu+LUM", &series).iter())
            .any(|(a, b)| a < b),
    );
    check(
        "MIN-IO-SUOPT raises the degree above pmu-cpu under memory pressure",
        get("mu-0.05/MIN-IO-SUOPT", &degree_series)[last]
            > get("mu-0.05/pmu-cpu+LUM", &degree_series)[last],
    );
    check(
        "MIN-IO-SUOPT degree grows with the system size (multi-user 0.05)",
        get("mu-0.05/MIN-IO-SUOPT", &degree_series)[last]
            >= get("mu-0.05/MIN-IO-SUOPT", &degree_series)[0],
    );

    write_results_json("fig7", &lab::rows_by_strategy(&rows));
}
