//! Fig. 7 — "Memory-bound environment" (1% scan selectivity).
//!
//! Buffer reduced by 10× (5 pages/PE), a single disk per PE; arrival
//! rates 0.05 and 0.025 QPS/PE plus the single-user baseline. Strategies:
//! MIN-IO-SUOPT vs p_mu-cpu+LUM. The table also reports the average degree
//! of join parallelism — the paper's headline here is that MIN-IO-SUOPT
//! *raises* the degree with the system size (up to 42 at 80 PE) to buy
//! aggregate memory, while p_mu-cpu stays at p_su-opt.
//!
//! Run: `cargo run --release -p bench --bin fig7 [--full]`

use bench::{check, with_mode, write_results_json, Mode};
use lb_core::{DegreePolicy, SelectPolicy, Strategy};
use snsim::{format_table, run_parallel, SimConfig};
use workload::WorkloadSpec;

const PES: [u32; 5] = [20, 30, 40, 60, 80];

fn main() {
    let mode = Mode::from_args();
    let strategies = [
        (
            "pmu-cpu+LUM",
            Strategy::Isolated {
                degree: DegreePolicy::MuCpu,
                select: SelectPolicy::Lum,
            },
        ),
        ("MIN-IO-SUOPT", Strategy::MinIoSuopt),
    ];
    let loads: [(&str, Option<f64>); 3] = [
        ("su", None),
        ("mu-0.025", Some(0.025)),
        ("mu-0.05", Some(0.05)),
    ];

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut degree_series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut raw = Vec::new();

    for (lname, rate) in loads {
        for (sname, strat) in strategies {
            let cfgs: Vec<SimConfig> = PES
                .iter()
                .map(|&n| {
                    let wl = match rate {
                        None => WorkloadSpec::single_user_join(0.01),
                        Some(r) => WorkloadSpec::homogeneous_join(0.01, r),
                    };
                    with_mode(
                        SimConfig::paper_default(n, wl, strat)
                            .with_buffer_pages(5)
                            .with_disks(1),
                        mode,
                    )
                })
                .collect();
            let sums = run_parallel(cfgs);
            let label = format!("{lname}/{sname}");
            series.push((
                label.clone(),
                sums.iter().map(|s| s.join_resp_ms()).collect(),
            ));
            degree_series.push((
                label.clone(),
                sums.iter().map(|s| s.avg_join_degree).collect(),
            ));
            raw.push((label, sums));
        }
    }

    let xs: Vec<String> = PES.iter().map(|n| n.to_string()).collect();
    println!(
        "{}",
        format_table(
            "Fig. 7 — memory-bound environment (buffer/10, 1 disk/PE): join response time [ms]",
            "#PE",
            &xs,
            &series,
        )
    );
    println!(
        "{}",
        format_table(
            "Fig. 7 annotation — average degree of join parallelism",
            "#PE",
            &xs,
            &degree_series,
        )
    );

    let get = |name: &str, v: &[(String, Vec<f64>)]| -> Vec<f64> {
        v.iter().find(|(n, _)| n == name).expect("series").1.clone()
    };
    let last = PES.len() - 1;
    check(
        "multi-user 0.05: MIN-IO-SUOPT beats pmu-cpu+LUM at one or more \
         system sizes (our degree overshoots the paper's 42 at 60–80 PE, \
         trading some of the win back — see EXPERIMENTS.md)",
        get("mu-0.05/MIN-IO-SUOPT", &series)
            .iter()
            .zip(get("mu-0.05/pmu-cpu+LUM", &series).iter())
            .any(|(a, b)| a < b),
    );
    check(
        "MIN-IO-SUOPT raises the degree above pmu-cpu under memory pressure",
        get("mu-0.05/MIN-IO-SUOPT", &degree_series)[last]
            > get("mu-0.05/pmu-cpu+LUM", &degree_series)[last],
    );
    check(
        "MIN-IO-SUOPT degree grows with the system size (multi-user 0.05)",
        get("mu-0.05/MIN-IO-SUOPT", &degree_series)[last]
            >= get("mu-0.05/MIN-IO-SUOPT", &degree_series)[0],
    );

    write_results_json("fig7", &raw);
}
