//! The scenario lab — run declarative experiment specs.
//!
//! ```text
//! cargo run --release --bin lab -- [flags] scenarios/<spec>.json ...
//!
//!   --dry-run        expand the sweep and list the runs without simulating
//!   --full           override run lengths with figure-quality 120 s runs
//!   --smoke          override run lengths with 8 s smoke runs (CI)
//!   --bench <file>   write a wall-clock throughput baseline (simulated
//!                    events per wall second, per scenario and total) to
//!                    `<file>` — the perf-trajectory anchor CI publishes
//!                    as BENCH_lab.json
//!   --profile        run serially with per-phase wall-clock profiling;
//!                    prints the breakdown per scenario and writes
//!                    `results/<name>.profile.json` (mutually exclusive
//!                    with --bench: profiled runs are serial by design)
//!   --trace          run serially with the observability layer forced on;
//!                    writes `results/<name>.timeseries.json`/`.csv`,
//!                    `results/<name>.explain.json` and
//!                    `results/<name>.trace.jsonl` (mutually exclusive with
//!                    --bench and --profile)
//!   --explain        like --trace, and also prints the placement-decision
//!                    digest (per-policy decision counts, win margins,
//!                    top-K winner nodes)
//! ```
//!
//! Each spec file holds one scenario (see `scenarios/` and README.md for
//! the format). Results land in `results/<scenario>.runs.json` and
//! `results/<scenario>.csv`; the headline table is printed per scenario.

use bench::lab::{self, RunLength};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--bench <file>` takes a value: extract the pair before flag checks.
    let bench_out: Option<String> = args.iter().position(|a| a == "--bench").map(|i| {
        if i + 1 >= args.len() || args[i + 1].starts_with("--") {
            eprintln!("error: --bench needs an output file");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        path
    });
    if let Some(unknown) = args.iter().find(|a| {
        a.starts_with("--")
            && !matches!(
                a.as_str(),
                "--dry-run" | "--full" | "--smoke" | "--profile" | "--trace" | "--explain"
            )
    }) {
        eprintln!("error: unknown flag `{unknown}`");
        eprintln!(
            "usage: lab [--dry-run] [--full|--smoke] [--bench <file>] [--profile] \
             [--trace] [--explain] <spec.json> ..."
        );
        std::process::exit(2);
    }
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let profile = args.iter().any(|a| a == "--profile");
    let explain = args.iter().any(|a| a == "--explain");
    let trace = explain || args.iter().any(|a| a == "--trace");
    if profile && bench_out.is_some() {
        eprintln!("error: --profile runs serially and would distort a --bench baseline");
        std::process::exit(2);
    }
    if trace && (profile || bench_out.is_some()) {
        eprintln!(
            "error: --trace/--explain runs serially; combine with neither --profile nor --bench"
        );
        std::process::exit(2);
    }
    let len = RunLength::from_args();
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("usage: lab [--dry-run] [--full|--smoke] [--bench <file>] <spec.json> ...");
        eprintln!("bundled specs live under scenarios/");
        std::process::exit(2);
    }

    let mut failed = false;
    let mut bench_rows: Vec<serde_json::Value> = Vec::new();
    let (mut bench_events, mut bench_wall) = (0u64, 0.0f64);
    for path in paths {
        let path = std::path::Path::new(path);
        let spec = match lab::load_spec(path) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
                continue;
            }
        };
        println!(
            "== scenario `{}` — {} run(s){}",
            spec.name,
            spec.run_count(),
            if spec.description.is_empty() {
                String::new()
            } else {
                format!(" — {}", spec.description)
            }
        );
        if dry_run {
            for (i, run) in spec.runs().iter().enumerate() {
                println!("  [{i:>3}] {}", run.label());
            }
            continue;
        }
        let started = std::time::Instant::now();
        let rows = if trace {
            let traced = lab::run_scenario_traced(&spec, len);
            let wrote = [
                lab::write_timeseries_json(&spec.name, &traced),
                lab::write_timeseries_csv(&spec.name, &traced),
                lab::write_explain_json(&spec.name, &traced),
                lab::write_trace_jsonl(&spec.name, &traced),
            ];
            for path in wrote.iter().flatten() {
                eprintln!("trace artifact written to {}", path.display());
            }
            if wrote.iter().any(Option::is_none) {
                failed = true;
            }
            if explain {
                lab::print_explain(&spec.name, &traced);
            }
            traced.into_iter().map(|(row, _)| row).collect()
        } else if profile {
            let (rows, report) = lab::run_scenario_profiled(&spec, len);
            println!("{}", report.format_table(&spec.name));
            if let Some(path) = lab::write_profile_json(&spec.name, &report) {
                eprintln!("profile written to {}", path.display());
            } else {
                failed = true;
            }
            rows
        } else {
            lab::run_scenario(&spec, len)
        };
        let wall = started.elapsed().as_secs_f64();
        if bench_out.is_some() {
            let events: u64 = rows.iter().map(|r| r.summary.events).sum();
            bench_events += events;
            bench_wall += wall;
            // Queue-depth / backpressure stats ride along with the
            // wall-clock baseline so overload trends are tracked in CI.
            let peak_queue_depth = rows
                .iter()
                .map(|r| r.summary.peak_queue_depth)
                .max()
                .unwrap_or(0);
            let queue_wait_p95 = rows
                .iter()
                .map(|r| r.summary.queue_wait_ms_p95)
                .fold(0.0f64, f64::max);
            let rejected: u64 = rows.iter().map(|r| r.summary.rejected).sum();
            let shrunk: u64 = rows.iter().map(|r| r.summary.shrunk_admissions).sum();
            // Per-resource utilization columns: the max of each run-mean
            // plus the worst p95, so resource-pressure trends (including
            // the interconnect) are tracked alongside events/sec.
            let fmax = |f: fn(&snsim::Summary) -> f64| {
                rows.iter().map(|r| f(&r.summary)).fold(0.0f64, f64::max)
            };
            bench_rows.push(serde_json::json!({
                "scenario": spec.name,
                "runs": rows.len() as u64,
                "events": events,
                "wall_secs": wall,
                "events_per_sec": events as f64 / wall.max(1e-9),
                "peak_queue_depth": peak_queue_depth,
                "queue_wait_ms_p95_max": queue_wait_p95,
                "rejected": rejected,
                "shrunk_admissions": shrunk,
                "cpu_util_max": fmax(|s| s.avg_cpu_util),
                "mem_util_max": fmax(|s| s.avg_mem_util),
                "disk_util_max": fmax(|s| s.avg_disk_util),
                "net_util_max": fmax(|s| s.avg_net_util),
                "net_util_p95_max": fmax(|s| s.p95_net_util),
                // Control-plane honesty metrics: zero across the board
                // under the clean central broker; the stale/lossy broker
                // scenarios publish their degradation here next to
                // events/sec.
                "false_suspicions": rows.iter().map(|r| r.summary.false_suspicions).sum::<u64>(),
                "stale_reads_p95_ms_max": fmax(|s| s.stale_reads_p95_ms),
            }));
        }
        lab::print_tables(&spec, &rows);
        match (
            lab::write_lab_json(&spec.name, &rows),
            lab::write_lab_csv(&spec.name, &rows),
        ) {
            (Some(json), Some(csv)) => {
                eprintln!(
                    "results written to {} and {}",
                    json.display(),
                    csv.display()
                );
            }
            _ => failed = true,
        }
    }
    if let Some(out) = bench_out {
        let payload = serde_json::json!({
            "bench": "lab",
            "scenarios": serde_json::Value::Array(bench_rows),
            "total_events": bench_events,
            "total_wall_secs": bench_wall,
            "events_per_sec": bench_events as f64 / bench_wall.max(1e-9),
        });
        match serde_json::to_string_pretty(&payload) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&out, json) {
                    eprintln!("error: could not write {out}: {e}");
                    failed = true;
                } else {
                    eprintln!("bench baseline written to {out}");
                }
            }
            Err(e) => {
                eprintln!("error: could not serialize bench baseline: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
