//! The scenario lab — run declarative experiment specs.
//!
//! ```text
//! cargo run --release --bin lab -- [flags] scenarios/<spec>.json ...
//!
//!   --dry-run   expand the sweep and list the runs without simulating
//!   --full      override run lengths with figure-quality 120 s runs
//!   --smoke     override run lengths with 8 s smoke runs (CI)
//! ```
//!
//! Each spec file holds one scenario (see `scenarios/` and README.md for
//! the format). Results land in `results/<scenario>.runs.json` and
//! `results/<scenario>.csv`; the headline table is printed per scenario.

use bench::lab::{self, RunLength};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(unknown) = args
        .iter()
        .find(|a| a.starts_with("--") && !matches!(a.as_str(), "--dry-run" | "--full" | "--smoke"))
    {
        eprintln!("error: unknown flag `{unknown}`");
        eprintln!("usage: lab [--dry-run] [--full|--smoke] <spec.json> ...");
        std::process::exit(2);
    }
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let len = RunLength::from_args();
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("usage: lab [--dry-run] [--full|--smoke] <spec.json> ...");
        eprintln!("bundled specs live under scenarios/");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in paths {
        let path = std::path::Path::new(path);
        let spec = match lab::load_spec(path) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
                continue;
            }
        };
        println!(
            "== scenario `{}` — {} run(s){}",
            spec.name,
            spec.run_count(),
            if spec.description.is_empty() {
                String::new()
            } else {
                format!(" — {}", spec.description)
            }
        );
        if dry_run {
            for (i, run) in spec.runs().iter().enumerate() {
                println!("  [{i:>3}] {}", run.label());
            }
            continue;
        }
        let rows = lab::run_scenario(&spec, len);
        lab::print_tables(&spec, &rows);
        match (
            lab::write_lab_json(&spec.name, &rows),
            lab::write_lab_csv(&spec.name, &rows),
        ) {
            (Some(json), Some(csv)) => {
                eprintln!(
                    "results written to {} and {}",
                    json.display(),
                    csv.display()
                );
            }
            _ => failed = true,
        }
    }
    if failed {
        std::process::exit(1);
    }
}
