//! Regenerate every figure in sequence (`--full` for the long runs).
//!
//! Run: `cargo run --release -p bench --bin all_figs [--full]`

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for fig in ["fig1", "fig5", "fig6", "fig7", "fig8", "fig9"] {
        println!("================ {fig} ================");
        let mut cmd = Command::new(exe_dir.join(fig));
        if full {
            cmd.arg("--full");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig} (build bench binaries first): {e}"));
        assert!(status.success(), "{fig} failed");
    }
    println!("all figures regenerated; see results/*.json");
}
