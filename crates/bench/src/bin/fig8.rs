//! Fig. 8 — "Influence of join complexity" (60 PE).
//!
//! Thin wrapper over `scenarios/fig8.json`: the spec pairs each scan
//! selectivity (0.1 / 1 / 2 / 5 %) with an arrival rate keeping the
//! system highly utilized (the paper: "at least one of the physical
//! resources was highly loaded (>75%)") via the `paired` sweep axis.
//! Reported: relative response-time improvement of each dynamic strategy
//! vs. the static baseline `p_su-opt + RANDOM`.
//!
//! Run: `cargo run --release -p bench --bin fig8 [--full]`

use bench::lab::{self, RunLength};
use bench::{check, write_results_json};
use snsim::{format_table, Summary};

const SPEC: &str = include_str!("../../../../scenarios/fig8.json");
const BASELINE: &str = "psu-opt+RANDOM";

fn main() {
    let len = RunLength::from_args();
    let (_, rows) = lab::run_embedded(SPEC, "fig8", len);

    let (xs, resp) = lab::series_by_strategy(&rows, Summary::join_resp_ms);
    let base = &resp
        .iter()
        .find(|(n, _)| n == BASELINE)
        .expect("baseline series")
        .1;
    let series: Vec<(String, Vec<f64>)> = resp
        .iter()
        .filter(|(n, _)| n != BASELINE)
        .map(|(n, ys)| {
            let improvement = ys
                .iter()
                .zip(base.iter())
                .map(|(y, b)| (1.0 - y / b) * 100.0)
                .collect();
            (n.clone(), improvement)
        })
        .collect();

    println!(
        "{}",
        format_table(
            "Fig. 8 — join complexity: response-time improvement vs psu-opt+RANDOM [%]",
            "sel",
            &xs,
            &series,
        )
    );

    let get =
        |name: &str| -> &Vec<f64> { &series.iter().find(|(n, _)| n == name).expect("series").1 };
    check(
        "dynamic strategies beat the static baseline for small joins (0.1%)",
        get("pmu-cpu+LUM")[0] > 0.0 && get("MIN-IO")[0] > 0.0,
    );
    check(
        "improvement shrinks as join complexity grows (pmu-cpu+LUM)",
        get("pmu-cpu+LUM")[0] > get("pmu-cpu+LUM")[3],
    );
    check(
        "at 5% selectivity every strategy's improvement is below its \
         small-join (0.1%) improvement (potential shrinks near p ≈ n)",
        ["psu-noIO+LUM", "MIN-IO", "pmu-cpu+LUM", "OPT-IO-CPU"]
            .iter()
            .all(|s| get(s)[3] < get(s)[0]),
    );

    write_results_json("fig8", &lab::rows_by_strategy(&rows));
}
