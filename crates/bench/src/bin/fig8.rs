//! Fig. 8 — "Influence of join complexity" (60 PE).
//!
//! Scan selectivity varied over 0.1 / 1 / 2 / 5 %; per complexity the
//! arrival rate is chosen so the system is highly utilized (the paper:
//! "at least one of the physical resources was highly loaded (>75%)").
//! Reported: relative response-time improvement of each dynamic strategy
//! vs. the static baseline `p_su-opt + RANDOM`.
//!
//! Run: `cargo run --release -p bench --bin fig8 [--full]`

use bench::{check, with_mode, write_results_json, Mode};
use lb_core::{DegreePolicy, SelectPolicy, Strategy};
use snsim::{format_table, run_parallel, SimConfig};
use workload::WorkloadSpec;

const N: u32 = 60;

/// (selectivity, arrival rate QPS/PE): rates drop as queries grow so one
/// resource stays highly utilized without overload collapse.
const POINTS: [(f64, f64); 4] = [(0.001, 1.0), (0.01, 0.25), (0.02, 0.10), (0.05, 0.035)];

fn main() {
    let mode = Mode::from_args();
    let baseline = Strategy::Isolated {
        degree: DegreePolicy::SuOpt,
        select: SelectPolicy::Random,
    };
    let dynamics = [
        (
            "psu-noIO+LUM",
            Strategy::Isolated {
                degree: DegreePolicy::SuNoIo,
                select: SelectPolicy::Lum,
            },
        ),
        ("MIN-IO-SUOPT", Strategy::MinIoSuopt),
        ("MIN-IO", Strategy::MinIo),
        (
            "pmu-cpu+LUM",
            Strategy::Isolated {
                degree: DegreePolicy::MuCpu,
                select: SelectPolicy::Lum,
            },
        ),
        ("OPT-IO-CPU", Strategy::OptIoCpu),
    ];

    // Baseline response times per selectivity.
    let base_cfgs: Vec<SimConfig> = POINTS
        .iter()
        .map(|&(sel, rate)| {
            with_mode(
                SimConfig::paper_default(N, WorkloadSpec::homogeneous_join(sel, rate), baseline),
                mode,
            )
        })
        .collect();
    let base = run_parallel(base_cfgs);
    let mut raw = vec![("baseline psu-opt+RANDOM".to_string(), base.clone())];

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, strat) in dynamics {
        let cfgs: Vec<SimConfig> = POINTS
            .iter()
            .map(|&(sel, rate)| {
                with_mode(
                    SimConfig::paper_default(N, WorkloadSpec::homogeneous_join(sel, rate), strat),
                    mode,
                )
            })
            .collect();
        let sums = run_parallel(cfgs);
        let improvement: Vec<f64> = sums
            .iter()
            .zip(&base)
            .map(|(s, b)| (1.0 - s.join_resp_ms() / b.join_resp_ms()) * 100.0)
            .collect();
        series.push((name.to_string(), improvement));
        raw.push((name.to_string(), sums));
    }

    let xs: Vec<String> = POINTS
        .iter()
        .map(|(sel, _)| format!("{}%", sel * 100.0))
        .collect();
    println!(
        "{}",
        format_table(
            "Fig. 8 — join complexity: response-time improvement vs psu-opt+RANDOM [%]",
            "sel",
            &xs,
            &series,
        )
    );

    let get =
        |name: &str| -> &Vec<f64> { &series.iter().find(|(n, _)| n == name).expect("series").1 };
    check(
        "dynamic strategies beat the static baseline for small joins (0.1%)",
        get("pmu-cpu+LUM")[0] > 0.0 && get("MIN-IO")[0] > 0.0,
    );
    check(
        "improvement shrinks as join complexity grows (pmu-cpu+LUM)",
        get("pmu-cpu+LUM")[0] > get("pmu-cpu+LUM")[3],
    );
    check(
        "at 5% selectivity every strategy's improvement is below its \
         small-join (0.1%) improvement (potential shrinks near p ≈ n)",
        ["psu-noIO+LUM", "MIN-IO", "pmu-cpu+LUM", "OPT-IO-CPU"]
            .iter()
            .all(|s| get(s)[3] < get(s)[0]),
    );

    write_results_json("fig8", &raw);
}
