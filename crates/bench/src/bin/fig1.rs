//! Fig. 1 — "Parallel join processing in single- and multi-user mode:
//! basic response time development and optimal number of join processors".
//!
//! Sweeps the degree of join parallelism p = 1..n with a *fixed* degree
//! strategy under three regimes:
//!   (a) single-user mode — the classic U-curve with optimum p_su-opt;
//!   (b) CPU bottleneck (high arrival rate) — the optimum shifts LEFT;
//!   (c) memory bottleneck (buffer/10, 1 disk) — the optimum shifts RIGHT.
//!
//! Also prints the analytic cost model's curve for comparison with the
//! simulated single-user curve.
//!
//! Run: `cargo run --release -p bench --bin fig1 [--full]`

use bench::{check, with_mode, write_results_json, Mode};
use lb_core::costmodel::{paper_join_profile, CostModel};
use lb_core::{DegreePolicy, SelectPolicy, Strategy};
use snsim::{format_table, run_parallel, SimConfig};
use workload::WorkloadSpec;

const N: u32 = 40;
const DEGREES: [u32; 8] = [1, 2, 4, 8, 15, 22, 30, 40];

fn sweep(
    mode: Mode,
    wl: WorkloadSpec,
    buffer: Option<u32>,
    disks: Option<u32>,
) -> Vec<snsim::Summary> {
    let cfgs: Vec<SimConfig> = DEGREES
        .iter()
        .map(|&p| {
            let strat = Strategy::Isolated {
                degree: DegreePolicy::Fixed(p),
                select: SelectPolicy::Random,
            };
            let mut cfg = SimConfig::paper_default(N, wl.clone(), strat);
            if let Some(b) = buffer {
                cfg = cfg.with_buffer_pages(b);
            }
            if let Some(d) = disks {
                cfg = cfg.with_disks(d);
            }
            with_mode(cfg, mode)
        })
        .collect();
    run_parallel(cfgs)
}

fn argmin(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

fn main() {
    let mode = Mode::from_args();

    let su = sweep(mode, WorkloadSpec::single_user_join(0.01), None, None);
    let cpu = sweep(mode, WorkloadSpec::homogeneous_join(0.01, 0.3), None, None);
    let mem = sweep(
        mode,
        WorkloadSpec::homogeneous_join(0.01, 0.05),
        Some(5),
        Some(1),
    );

    let model = CostModel::new(
        SimConfig::paper_default(N, WorkloadSpec::single_user_join(0.01), Strategy::MinIo)
            .cost_params(),
    );
    let profile = paper_join_profile(N, 0.01);
    let analytic: Vec<f64> = DEGREES
        .iter()
        .map(|&p| model.rt_single_user(p, &profile))
        .collect();

    let series: Vec<(String, Vec<f64>)> = vec![
        (
            "(a) single-user".into(),
            su.iter().map(|s| s.join_resp_ms()).collect(),
        ),
        (
            "(b) CPU-bound mu".into(),
            cpu.iter().map(|s| s.join_resp_ms()).collect(),
        ),
        (
            "(c) memory-bound mu".into(),
            mem.iter().map(|s| s.join_resp_ms()).collect(),
        ),
        ("analytic model (su)".into(), analytic.clone()),
    ];
    let xs: Vec<String> = DEGREES.iter().map(|p| p.to_string()).collect();
    println!(
        "{}",
        format_table(
            "Fig. 1 — response time vs degree of join parallelism [ms], 40 PE",
            "p",
            &xs,
            &series,
        )
    );

    let su_curve: Vec<f64> = su.iter().map(|s| s.join_resp_ms()).collect();
    let cpu_curve: Vec<f64> = cpu.iter().map(|s| s.join_resp_ms()).collect();
    let mem_curve: Vec<f64> = mem.iter().map(|s| s.join_resp_ms()).collect();
    let (su_opt, cpu_opt, mem_opt) = (
        DEGREES[argmin(&su_curve)],
        DEGREES[argmin(&cpu_curve)],
        DEGREES[argmin(&mem_curve)],
    );
    let psu_opt_analytic = model.psu_opt(N, &profile);
    println!(
        "optima: single-user p*={su_opt}, CPU-bound p*={cpu_opt}, \
         memory-bound p*={mem_opt} (analytic p_su-opt = {psu_opt_analytic})"
    );
    check("single-user curve falls then rises (U-shape)", {
        let i = argmin(&su_curve);
        i > 0 && su_curve[0] > su_curve[i] && su_curve[su_curve.len() - 1] >= su_curve[i]
    });
    // Fig. 1's x-axis reference is SU-OPT, the analytic optimum (the
    // simulated single-user curve has a broad plateau around it).
    check(
        "CPU bottleneck shifts the optimum below p_su-opt (Fig. 1b)",
        cpu_opt < psu_opt_analytic,
    );
    check(
        "memory bottleneck shifts the optimum above p_su-opt (Fig. 1c)",
        mem_opt > psu_opt_analytic,
    );
    check(
        "analytic model optimum within the simulated single-user plateau",
        {
            let pa = DEGREES[argmin(&analytic)];
            let rt_at = |p: u32| su_curve[DEGREES.iter().position(|&d| d == p).expect("in sweep")];
            rt_at(pa) <= su_curve[argmin(&su_curve)] * 1.25
        },
    );

    write_results_json(
        "fig1",
        &[
            ("single-user".into(), su),
            ("cpu-bound".into(), cpu),
            ("memory-bound".into(), mem),
        ],
    );
}
