//! Fig. 1 — "Parallel join processing in single- and multi-user mode:
//! basic response time development and optimal number of join processors".
//!
//! Thin wrapper over three bundled specs sweeping a *fixed* degree
//! strategy (`fixed(p)+RANDOM`) under the three regimes:
//!   (a) `scenarios/fig1_single_user.json` — the classic U-curve;
//!   (b) `scenarios/fig1_cpu_bound.json` — the optimum shifts LEFT;
//!   (c) `scenarios/fig1_memory_bound.json` — the optimum shifts RIGHT.
//!
//! Also prints the analytic cost model's curve for comparison with the
//! simulated single-user curve.
//!
//! Run: `cargo run --release -p bench --bin fig1 [--full]`

use bench::lab::{self, RunLength};
use bench::{check, write_results_json};
use lb_core::costmodel::{paper_join_profile, CostModel};
use lb_core::Strategy;
use snsim::{format_table, SimConfig, Summary};
use workload::WorkloadSpec;

const N: u32 = 40;
const DEGREES: [u32; 8] = [1, 2, 4, 8, 15, 22, 30, 40];

const SPEC_SU: &str = include_str!("../../../../scenarios/fig1_single_user.json");
const SPEC_CPU: &str = include_str!("../../../../scenarios/fig1_cpu_bound.json");
const SPEC_MEM: &str = include_str!("../../../../scenarios/fig1_memory_bound.json");

/// The specs sweep the strategy axis over `fixed(p)` degrees: each run is
/// one point of the degree curve, in expansion order.
fn sweep(json: &str, name: &str, len: RunLength) -> Vec<Summary> {
    let (_, rows) = lab::run_embedded(json, name, len);
    assert_eq!(rows.len(), DEGREES.len(), "{name}: one run per degree");
    rows.into_iter().map(|r| r.summary).collect()
}

/// Index of the smallest value. Saturated cells report `f64::INFINITY`
/// (zero completions after warm-up) and therefore never win — the old
/// 0.0-for-empty encoding made argmin crown empty cells, which was the
/// root cause of the long-standing fig1c "shape violation".
fn argmin(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .filter(|(_, x)| x.is_finite())
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("at least one cell completed work")
}

fn main() {
    let len = RunLength::from_args();

    let su = sweep(SPEC_SU, "fig1_single_user", len);
    let cpu = sweep(SPEC_CPU, "fig1_cpu_bound", len);
    let mem = sweep(SPEC_MEM, "fig1_memory_bound", len);

    let model = CostModel::new(
        SimConfig::paper_default(N, WorkloadSpec::single_user_join(0.01), Strategy::MinIo)
            .cost_params(),
    );
    let profile = paper_join_profile(N, 0.01);
    let analytic: Vec<f64> = DEGREES
        .iter()
        .map(|&p| model.rt_single_user(p, &profile))
        .collect();

    let series: Vec<(String, Vec<f64>)> = vec![
        (
            "(a) single-user".into(),
            su.iter().map(|s| s.join_resp_ms()).collect(),
        ),
        (
            "(b) CPU-bound mu".into(),
            cpu.iter().map(|s| s.join_resp_ms()).collect(),
        ),
        (
            "(c) memory-bound mu".into(),
            mem.iter().map(|s| s.join_resp_ms()).collect(),
        ),
        ("analytic model (su)".into(), analytic.clone()),
    ];
    let xs: Vec<String> = DEGREES.iter().map(|p| p.to_string()).collect();
    println!(
        "{}",
        format_table(
            "Fig. 1 — response time vs degree of join parallelism [ms], 40 PE",
            "p",
            &xs,
            &series,
        )
    );

    let su_curve: Vec<f64> = su.iter().map(|s| s.join_resp_ms()).collect();
    let cpu_curve: Vec<f64> = cpu.iter().map(|s| s.join_resp_ms()).collect();
    let mem_curve: Vec<f64> = mem.iter().map(|s| s.join_resp_ms()).collect();
    let (su_opt, cpu_opt, mem_opt) = (
        DEGREES[argmin(&su_curve)],
        DEGREES[argmin(&cpu_curve)],
        DEGREES[argmin(&mem_curve)],
    );
    let psu_opt_analytic = model.psu_opt(N, &profile);
    println!(
        "optima: single-user p*={su_opt}, CPU-bound p*={cpu_opt}, \
         memory-bound p*={mem_opt} (analytic p_su-opt = {psu_opt_analytic})"
    );
    check("single-user curve falls then rises (U-shape)", {
        let i = argmin(&su_curve);
        i > 0 && su_curve[0] > su_curve[i] && su_curve[su_curve.len() - 1] >= su_curve[i]
    });
    // Fig. 1's x-axis reference is SU-OPT, the analytic optimum (the
    // simulated single-user curve has a broad plateau around it).
    check(
        "CPU bottleneck shifts the optimum below p_su-opt (Fig. 1b)",
        cpu_opt < psu_opt_analytic,
    );
    // Fig. 1c: under a memory bottleneck the optimum moves right to
    // gather aggregate memory — above the CPU-bound optimum and at least
    // to the no-spill degree ceil(table_pages / buffer_pages), which sits
    // at p_su-opt here (131.25 pages / 5 pages per PE ≈ 27 of 40 PEs).
    check(
        "memory bottleneck shifts the optimum right, to ≥ p_su-opt (Fig. 1c)",
        mem_opt >= psu_opt_analytic && mem_opt > cpu_opt,
    );
    check(
        "analytic model optimum within the simulated single-user plateau",
        {
            let pa = DEGREES[argmin(&analytic)];
            let rt_at = |p: u32| su_curve[DEGREES.iter().position(|&d| d == p).expect("in sweep")];
            rt_at(pa) <= su_curve[argmin(&su_curve)] * 1.25
        },
    );

    write_results_json(
        "fig1",
        &[
            ("single-user".into(), su),
            ("cpu-bound".into(), cpu),
            ("memory-bound".into(), mem),
        ],
    );
}
