//! CI perf-regression gate over `lab --bench` output.
//!
//! Compares freshly measured per-scenario `events_per_sec` against the
//! committed baseline (`BENCH_lab.json` at the repo root) and fails the
//! build when any scenario regresses by more than the tolerance:
//!
//! ```text
//! bench_gate BENCH_lab.json BENCH_fresh_fig.json BENCH_fresh_soak.json
//! ```
//!
//! The first path is the committed baseline; every further path is a
//! fresh `lab --bench` output. Fresh files may cover different scenario
//! subsets (CI reruns the cheap smoke slices, not the full soak); only
//! scenarios present in both baseline and a fresh file are compared.
//!
//! Two checks run:
//!
//! 1. **Regression**: fresh events/sec must be at least the scenario's
//!    floor fraction of the committed value. Scenarios in the [`FLOORS`]
//!    table carry an explicit pinned floor (the soak family: ≥ 0.75 ×
//!    committed); everything else (the fig6 smoke slices etc.) uses the
//!    global `1 - tolerance` rule, default tolerance 0.25
//!    (`--tolerance`, or `BENCH_GATE_TOLERANCE` for slow CI runners —
//!    wall-clock throughput is machine-dependent, the committed numbers
//!    are from the lab machine). Loosening the default gate does *not*
//!    loosen the pinned soak floors; that takes the separate
//!    `BENCH_GATE_SOAK_FLOOR`, so it stays a visible decision.
//! 2. **Soak ratio**: when a fresh file carries both
//!    `thousand_pe_soak_smoke` and `thousand_pe_soak_baseline`, the
//!    incremental-vs-sort-per-call events/sec ratio must stay at or
//!    above `--min-soak-ratio` (default 8.0; the committed trajectory
//!    is 12.5× full / 10.6× smoke — the floor leaves headroom for
//!    noisy shared runners). The ratio is same-machine, so unlike the
//!    absolute gate it does not need a machine-speed tolerance.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Per-scenario throughput floors as fractions of the committed
/// events/sec. The soak family is the trajectory the 1000-PE north star
/// is graded on, so its floors are pinned here rather than riding the
/// adjustable global tolerance; `BENCH_GATE_SOAK_FLOOR` overrides them
/// all at once for genuinely slow runners.
const FLOORS: &[(&str, f64)] = &[
    ("thousand_pe_soak", 0.75),
    ("thousand_pe_soak_smoke", 0.75),
    ("thousand_pe_soak_shuffle", 0.75),
    ("thousand_pe_soak_joins", 0.75),
    ("thousand_pe_soak_baseline", 0.75),
];

struct Row {
    events_per_sec: f64,
    events: u64,
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::F64(f) => Some(f),
        Value::U64(u) => Some(u as f64),
        Value::I64(i) => Some(i as f64),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(u) => Some(u),
        Value::I64(i) => u64::try_from(i).ok(),
        _ => None,
    }
}

fn load_rows(path: &str) -> Result<BTreeMap<String, Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    let scenarios = doc
        .get("scenarios")
        .and_then(|s| s.as_array())
        .ok_or_else(|| format!("{path}: missing \"scenarios\" array"))?;
    let mut rows = BTreeMap::new();
    for s in scenarios {
        let name = s
            .get("scenario")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{path}: scenario row without a name"))?;
        let evs = s
            .get("events_per_sec")
            .and_then(as_f64)
            .ok_or_else(|| format!("{path}: {name}: missing events_per_sec"))?;
        let events = s.get("events").and_then(as_u64).unwrap_or(0);
        rows.insert(
            name.to_string(),
            Row {
                events_per_sec: evs,
                events,
            },
        );
    }
    Ok(rows)
}

fn run() -> Result<bool, String> {
    let mut tolerance = match std::env::var("BENCH_GATE_TOLERANCE") {
        Ok(v) => v
            .parse::<f64>()
            .map_err(|_| format!("BENCH_GATE_TOLERANCE={v}: not a number"))?,
        Err(_) => 0.25,
    };
    let soak_floor = match std::env::var("BENCH_GATE_SOAK_FLOOR") {
        Ok(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("BENCH_GATE_SOAK_FLOOR={v}: not a number"))?,
        ),
        Err(_) => None,
    };
    let mut min_soak_ratio = 8.0;
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                tolerance = v
                    .parse()
                    .map_err(|_| format!("--tolerance {v}: not a number"))?;
            }
            "--min-soak-ratio" => {
                let v = args.next().ok_or("--min-soak-ratio needs a value")?;
                min_soak_ratio = v
                    .parse()
                    .map_err(|_| format!("--min-soak-ratio {v}: not a number"))?;
            }
            _ => paths.push(a),
        }
    }
    if paths.len() < 2 {
        return Err("usage: bench_gate <baseline.json> <fresh.json>... \
             [--tolerance 0.25] [--min-soak-ratio 8]"
            .into());
    }

    let baseline = load_rows(&paths[0])?;
    let mut ok = true;

    for fresh_path in &paths[1..] {
        let fresh = load_rows(fresh_path)?;
        for (name, row) in &fresh {
            let Some(base) = baseline.get(name) else {
                println!("  skip  {name:32} (not in baseline)");
                continue;
            };
            let pinned = FLOORS
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, f)| soak_floor.unwrap_or(f));
            let floor = pinned.unwrap_or(1.0 - tolerance);
            let change = row.events_per_sec / base.events_per_sec - 1.0;
            let fail = row.events_per_sec < floor * base.events_per_sec;
            println!(
                "  {}  {name:32} {:>12.0} ev/s vs {:>12.0} committed ({:+.1}%, floor {:.0}%{})",
                if fail { "FAIL" } else { " ok " },
                row.events_per_sec,
                base.events_per_sec,
                change * 100.0,
                floor * 100.0,
                if pinned.is_some() { " pinned" } else { "" },
            );
            if fail {
                ok = false;
            }
        }

        if let (Some(smoke), Some(sort)) = (
            fresh.get("thousand_pe_soak_smoke"),
            fresh.get("thousand_pe_soak_baseline"),
        ) {
            if smoke.events != sort.events {
                println!(
                    "  FAIL  soak smoke/baseline event counts differ \
                     ({} vs {}) — runs are no longer bit-identical",
                    smoke.events, sort.events
                );
                ok = false;
            }
            let ratio = smoke.events_per_sec / sort.events_per_sec;
            let fail = ratio < min_soak_ratio;
            println!(
                "  {}  incremental broker reads are {ratio:.1}x sort-per-call \
                 (floor {min_soak_ratio:.1}x)",
                if fail { "FAIL" } else { " ok " },
            );
            if fail {
                ok = false;
            }
        }
    }

    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench_gate: all scenarios within tolerance");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench_gate: events/sec regression beyond tolerance");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
