//! Fig. 9 — "Static vs. dynamic load balancing for mixed workloads"
//! (multi-user join 0.075 QPS/PE; 5 disks per PE; OLTP at 100 TPS per
//! OLTP node).
//!
//! Thin wrapper over `scenarios/fig9a.json` (OLTP on the A-nodes, 20% of
//! PEs) and `scenarios/fig9b.json` (OLTP on the B-nodes, 80%).
//!
//! Run: `cargo run --release -p bench --bin fig9 [--full]`

use bench::lab::{self, RunLength};
use bench::{check, write_results_json};
use snsim::{format_table, Summary};

const SPEC_A: &str = include_str!("../../../../scenarios/fig9a.json");
const SPEC_B: &str = include_str!("../../../../scenarios/fig9b.json");

fn main() {
    let len = RunLength::from_args();
    for (panel, json, name) in [
        ("9a (OLTP on A-nodes)", SPEC_A, "fig9a"),
        ("9b (OLTP on B-nodes)", SPEC_B, "fig9b"),
    ] {
        let (_, rows) = lab::run_embedded(json, name, len);
        let (xs, series) = lab::series_by_strategy(&rows, Summary::join_resp_ms);
        let (_, oltp_series) =
            lab::series_by_strategy(&rows, |s| s.oltp_resp_ms().unwrap_or(f64::NAN));

        println!(
            "{}",
            format_table(
                &format!("Fig. {panel}: join response time [ms]"),
                "#PE",
                &xs,
                &series,
            )
        );
        println!(
            "{}",
            format_table(
                &format!("Fig. {panel}: OLTP response time [ms]"),
                "#PE",
                &xs,
                &oltp_series,
            )
        );

        let get = |name: &str| -> &Vec<f64> {
            &series.iter().find(|(n, _)| n == name).expect("series").1
        };
        let last = xs.len() - 1;
        check(
            "dynamic strategies beat static RANDOM schemes at 80 PE",
            get("OPT-IO-CPU")[last] < get("psu-opt+RANDOM")[last]
                && get("pmu-cpu+LUM")[last] < get("psu-opt+RANDOM")[last],
        );
        check(
            "LUM helps even with a static degree (psu-noIO+LUM < psu-noIO+RANDOM)",
            get("psu-noIO+LUM")[last] <= get("psu-noIO+RANDOM")[last],
        );
        check(
            "OPT-IO-CPU at 80 PE beats both RANDOM statics and is at least \
             tied with pmu-cpu+LUM (§5.3's integrated-vs-isolated claim)",
            get("OPT-IO-CPU")[last] < get("psu-opt+RANDOM")[last]
                && get("OPT-IO-CPU")[last] < get("psu-noIO+RANDOM")[last]
                && get("OPT-IO-CPU")[last] <= get("pmu-cpu+LUM")[last] * 1.05,
        );
        if panel.starts_with("9a") {
            check(
                "small systems: OPT-IO-CPU beats pmu-cpu+LUM (integrated wins, §5.3)",
                get("OPT-IO-CPU")[0] <= get("pmu-cpu+LUM")[0] * 1.05,
            );
        }
        write_results_json(name, &lab::rows_by_strategy(&rows));
    }
}
