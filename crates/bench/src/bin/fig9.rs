//! Fig. 9 — "Static vs. dynamic load balancing for mixed workloads"
//! (multi-user join 0.075 QPS/PE; 5 disks per PE; OLTP at 100 TPS per
//! OLTP node).
//!
//! (a) OLTP on the A-nodes (20% of PEs); (b) OLTP on the B-nodes (80%).
//! Series: psu-opt+RANDOM, psu-noIO+RANDOM, psu-noIO+LUM, pmu-cpu+LUM,
//! OPT-IO-CPU. X-axis: 10..80 PE.
//!
//! Run: `cargo run --release -p bench --bin fig9 [--full]`

use bench::{check, fig9_strategies, with_mode, write_results_json, Mode, PE_SWEEP};
use dbmodel::RelationId;
use snsim::{format_table, run_parallel, SimConfig};
use workload::{NodeFilter, WorkloadSpec};

fn main() {
    let mode = Mode::from_args();
    for (panel, nodes) in [
        ("9a (OLTP on A-nodes)", NodeFilter::ANodes),
        ("9b (OLTP on B-nodes)", NodeFilter::BNodes),
    ] {
        let mut series: Vec<(String, Vec<f64>)> = Vec::new();
        let mut oltp_series: Vec<(String, Vec<f64>)> = Vec::new();
        let mut raw = Vec::new();
        for strat in fig9_strategies() {
            let cfgs: Vec<SimConfig> = PE_SWEEP
                .iter()
                .map(|&n| {
                    let wl = WorkloadSpec::mixed(0.01, 0.075, RelationId(2), 100.0, nodes);
                    with_mode(SimConfig::paper_default(n, wl, strat).with_disks(5), mode)
                })
                .collect();
            let sums = run_parallel(cfgs);
            series.push((
                strat.name().to_string(),
                sums.iter().map(|s| s.join_resp_ms()).collect(),
            ));
            oltp_series.push((
                strat.name().to_string(),
                sums.iter()
                    .map(|s| s.oltp_resp_ms().unwrap_or(f64::NAN))
                    .collect(),
            ));
            raw.push((strat.name().to_string(), sums));
        }

        let xs: Vec<String> = PE_SWEEP.iter().map(|n| n.to_string()).collect();
        println!(
            "{}",
            format_table(
                &format!("Fig. {panel}: join response time [ms]"),
                "#PE",
                &xs,
                &series,
            )
        );
        println!(
            "{}",
            format_table(
                &format!("Fig. {panel}: OLTP response time [ms]"),
                "#PE",
                &xs,
                &oltp_series,
            )
        );

        let get = |name: &str| -> &Vec<f64> {
            &series.iter().find(|(n, _)| n == name).expect("series").1
        };
        let last = PE_SWEEP.len() - 1;
        check(
            "dynamic strategies beat static RANDOM schemes at 80 PE",
            get("OPT-IO-CPU")[last] < get("psu-opt+RANDOM")[last]
                && get("pmu-cpu+LUM")[last] < get("psu-opt+RANDOM")[last],
        );
        check(
            "LUM helps even with a static degree (psu-noIO+LUM < psu-noIO+RANDOM)",
            get("psu-noIO+LUM")[last] <= get("psu-noIO+RANDOM")[last],
        );
        check(
            "OPT-IO-CPU at 80 PE beats both RANDOM statics and is at least \
             tied with pmu-cpu+LUM (§5.3's integrated-vs-isolated claim)",
            get("OPT-IO-CPU")[last] < get("psu-opt+RANDOM")[last]
                && get("OPT-IO-CPU")[last] < get("psu-noIO+RANDOM")[last]
                && get("OPT-IO-CPU")[last] <= get("pmu-cpu+LUM")[last] * 1.05,
        );
        if panel.starts_with("9a") {
            check(
                "small systems: OPT-IO-CPU beats pmu-cpu+LUM (integrated wins, §5.3)",
                get("OPT-IO-CPU")[0] <= get("pmu-cpu+LUM")[0] * 1.05,
            );
        }
        write_results_json(
            if panel.starts_with("9a") {
                "fig9a"
            } else {
                "fig9b"
            },
            &raw,
        );
    }
}
