//! Fig. 5 — "Static degree of parallelism"
//! (multi-user join 0.25 QPS/PE; 1% scan selectivity).
//!
//! Thin wrapper over the bundled `scenarios/fig5.json` and
//! `scenarios/single_user_baseline.json` specs: the scenario lab runs the
//! sweep, this binary re-checks the paper's qualitative claims.
//!
//! Run: `cargo run --release -p bench --bin fig5 [--full]`

use bench::lab::{self, RunLength};
use bench::{check, write_results_json};
use snsim::{format_table, Summary};

const SPEC: &str = include_str!("../../../../scenarios/fig5.json");
const BASELINE: &str = include_str!("../../../../scenarios/single_user_baseline.json");

fn main() {
    let len = RunLength::from_args();
    let (_, mut rows) = lab::run_embedded(SPEC, "fig5", len);
    let (_, baseline) = lab::run_embedded(BASELINE, "single_user_baseline", len);
    for mut row in baseline {
        row.strategy = "single-user(psu-opt)".into();
        rows.push(row);
    }

    let (xs, series) = lab::series_by_strategy(&rows, Summary::join_resp_ms);
    println!(
        "{}",
        format_table(
            "Fig. 5 — static degree of parallelism: join response time [ms]",
            "#PE",
            &xs,
            &series,
        )
    );

    // Qualitative claims from §5.2.
    let get =
        |name: &str| -> &Vec<f64> { &series.iter().find(|(n, _)| n == name).expect("series").1 };
    let at80 = |name: &str| get(name)[xs.len() - 1];
    let at10 = |name: &str| get(name)[0];
    check(
        "light load (≤ 20 PE): psu-opt beats psu-noIO (CPU parallelism underused)",
        at10("psu-opt+RANDOM") < at10("psu-noIO+RANDOM"),
    );
    check(
        "RANDOM is the worst selection for psu-noIO at 80 PE",
        at80("psu-noIO+RANDOM") >= at80("psu-noIO+LUM"),
    );
    check(
        "LUM beats LUC for psu-noIO (memory bottleneck dominates, §5.2)",
        at80("psu-noIO+LUM") <= at80("psu-noIO+LUC") * 1.05,
    );
    check(
        "single-user baseline below every multi-user series at 80 PE",
        [
            "psu-noIO+RANDOM",
            "psu-noIO+LUM",
            "psu-opt+RANDOM",
            "psu-opt+LUM",
        ]
        .iter()
        .all(|s| at80(s) > at80("single-user(psu-opt)")),
    );

    write_results_json("fig5", &lab::rows_by_strategy(&rows));
}
