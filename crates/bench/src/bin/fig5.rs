//! Fig. 5 — "Static degree of parallelism"
//! (multi-user join 0.25 QPS/PE; 1% scan selectivity).
//!
//! Series: p_su-noIO (= 3) and p_su-opt (= 30) join processors, each with
//! RANDOM / LUC / LUM selection, plus the single-user baseline with
//! p_su-opt. X-axis: system size 10..80 PE.
//!
//! Run: `cargo run --release -p bench --bin fig5 [--full]`

use bench::{check, fig5_strategies, with_mode, write_results_json, Mode, PE_SWEEP};
use lb_core::{DegreePolicy, SelectPolicy, Strategy};
use snsim::{format_table, run_parallel, SimConfig};
use workload::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut raw = Vec::new();

    let mut strategies = fig5_strategies();
    strategies.push(Strategy::Isolated {
        degree: DegreePolicy::SuOpt,
        select: SelectPolicy::Random,
    }); // single-user baseline runs last with a different workload

    for (si, strat) in strategies.iter().enumerate() {
        let single_user = si == strategies.len() - 1;
        let cfgs: Vec<SimConfig> = PE_SWEEP
            .iter()
            .map(|&n| {
                let wl = if single_user {
                    WorkloadSpec::single_user_join(0.01)
                } else {
                    WorkloadSpec::homogeneous_join(0.01, 0.25)
                };
                with_mode(SimConfig::paper_default(n, wl, *strat), mode)
            })
            .collect();
        let sums = run_parallel(cfgs);
        let name = if single_user {
            "single-user(psu-opt)".to_string()
        } else {
            strat.name().to_string()
        };
        series.push((
            name.clone(),
            sums.iter().map(|s| s.join_resp_ms()).collect(),
        ));
        raw.push((name, sums));
    }

    let xs: Vec<String> = PE_SWEEP.iter().map(|n| n.to_string()).collect();
    println!(
        "{}",
        format_table(
            "Fig. 5 — static degree of parallelism: join response time [ms]",
            "#PE",
            &xs,
            &series,
        )
    );

    // Qualitative claims from §5.2.
    let get =
        |name: &str| -> &Vec<f64> { &series.iter().find(|(n, _)| n == name).expect("series").1 };
    let at80 = |name: &str| get(name)[PE_SWEEP.len() - 1];
    let at10 = |name: &str| get(name)[0];
    check(
        "light load (≤ 20 PE): psu-opt beats psu-noIO (CPU parallelism underused)",
        at10("psu-opt+RANDOM") < at10("psu-noIO+RANDOM"),
    );
    check(
        "RANDOM is the worst selection for psu-noIO at 80 PE",
        at80("psu-noIO+RANDOM") >= at80("psu-noIO+LUM"),
    );
    check(
        "LUM beats LUC for psu-noIO (memory bottleneck dominates, §5.2)",
        at80("psu-noIO+LUM") <= at80("psu-noIO+LUC") * 1.05,
    );
    check(
        "single-user baseline below every multi-user series at 80 PE",
        [
            "psu-noIO+RANDOM",
            "psu-noIO+LUM",
            "psu-opt+RANDOM",
            "psu-opt+LUM",
        ]
        .iter()
        .all(|s| at80(s) > at80("single-user(psu-opt)")),
    );

    write_results_json("fig5", &raw);
}
