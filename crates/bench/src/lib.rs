//! Shared infrastructure for the figure-regeneration harnesses.
//!
//! Every binary in `src/bin/fig*.rs` regenerates one figure of Rahm &
//! Marek, VLDB 1995 (see DESIGN.md's experiment index). Output is a
//! paper-style table on stdout plus a machine-readable JSON file under
//! `results/` for EXPERIMENTS.md provenance.

use lb_core::{DegreePolicy, SelectPolicy, Strategy};
use simkit::SimDur;
use snsim::{SimConfig, Summary};
use std::path::PathBuf;

/// Run length preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Short runs for CI / `cargo run` sanity (default).
    Quick,
    /// Longer runs for EXPERIMENTS.md numbers (`--full`).
    Full,
}

impl Mode {
    /// Parse from process args (`--full` selects [`Mode::Full`]).
    pub fn from_args() -> Mode {
        if std::env::args().any(|a| a == "--full") {
            Mode::Full
        } else {
            Mode::Quick
        }
    }

    /// (simulated duration, warm-up) for this mode.
    pub fn times(self) -> (SimDur, SimDur) {
        match self {
            Mode::Quick => (SimDur::from_secs(40), SimDur::from_secs(8)),
            Mode::Full => (SimDur::from_secs(120), SimDur::from_secs(20)),
        }
    }
}

/// The paper's system-size sweep.
pub const PE_SWEEP: [u32; 5] = [10, 20, 40, 60, 80];

/// Apply the mode's run length to a config.
pub fn with_mode(cfg: SimConfig, mode: Mode) -> SimConfig {
    let (sim, warm) = mode.times();
    cfg.with_sim_time(sim, warm)
}

/// The isolated strategies of Fig. 5 (static degrees × selection).
pub fn fig5_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Isolated {
            degree: DegreePolicy::SuNoIo,
            select: SelectPolicy::Random,
        },
        Strategy::Isolated {
            degree: DegreePolicy::SuNoIo,
            select: SelectPolicy::Luc,
        },
        Strategy::Isolated {
            degree: DegreePolicy::SuNoIo,
            select: SelectPolicy::Lum,
        },
        Strategy::Isolated {
            degree: DegreePolicy::SuOpt,
            select: SelectPolicy::Random,
        },
        Strategy::Isolated {
            degree: DegreePolicy::SuOpt,
            select: SelectPolicy::Luc,
        },
        Strategy::Isolated {
            degree: DegreePolicy::SuOpt,
            select: SelectPolicy::Lum,
        },
    ]
}

/// The strategies of Fig. 9 (static vs dynamic for mixed workloads).
pub fn fig9_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Isolated {
            degree: DegreePolicy::SuOpt,
            select: SelectPolicy::Random,
        },
        Strategy::Isolated {
            degree: DegreePolicy::SuNoIo,
            select: SelectPolicy::Random,
        },
        Strategy::Isolated {
            degree: DegreePolicy::SuNoIo,
            select: SelectPolicy::Lum,
        },
        Strategy::Isolated {
            degree: DegreePolicy::MuCpu,
            select: SelectPolicy::Lum,
        },
        Strategy::OptIoCpu,
    ]
}

/// Write a JSON result file under `results/` (created on demand).
pub fn write_results_json(name: &str, summaries: &[(String, Vec<Summary>)]) {
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let payload: Vec<serde_json::Value> = summaries
        .iter()
        .map(|(series, sums)| {
            serde_json::json!({
                "series": series,
                "points": sums,
            })
        })
        .collect();
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(&payload) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("results written to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
}

/// Assert a qualitative claim, printing rather than panicking (harnesses
/// should report shape violations without aborting the whole run).
pub fn check(claim: &str, ok: bool) {
    if ok {
        println!("  [shape OK] {claim}");
    } else {
        println!("  [SHAPE VIOLATION] {claim}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_have_sane_times() {
        let (s, w) = Mode::Quick.times();
        assert!(s > w);
        let (s2, w2) = Mode::Full.times();
        assert!(s2 > s && w2 > w);
    }

    #[test]
    fn strategy_sets_match_paper() {
        assert_eq!(fig5_strategies().len(), 6);
        assert_eq!(fig9_strategies().len(), 5);
        assert_eq!(Strategy::fig6_set().len(), 5);
    }
}
