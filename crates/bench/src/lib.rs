//! Shared infrastructure for the figure-regeneration harnesses and the
//! scenario lab.
//!
//! Every binary in `src/bin/fig*.rs` regenerates one figure of Rahm &
//! Marek, VLDB 1995 (see DESIGN.md's experiment index); since the
//! scenario lab landed they are thin wrappers over bundled specs in
//! `scenarios/` driven by the [`lab`] module, which is also the engine of
//! the general-purpose `lab` binary (`cargo run --release --bin lab`).
//! Output is a paper-style table on stdout plus machine-readable JSON/CSV
//! files under `results/` for EXPERIMENTS.md provenance.

pub mod lab;

use snsim::Summary;
use std::path::PathBuf;

/// Write a JSON result file under `results/` (created on demand) in the
/// legacy figure format: an array of `{series, points}` groups. The
/// scenario lab's own writers ([`lab::write_lab_json`]) use a different,
/// per-run format and a `.runs.json` suffix so the two never collide.
pub fn write_results_json(name: &str, summaries: &[(String, Vec<Summary>)]) {
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let payload: Vec<serde_json::Value> = summaries
        .iter()
        .map(|(series, sums)| {
            serde_json::json!({
                "series": series,
                "points": sums,
            })
        })
        .collect();
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(&payload) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("results written to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
}

/// Assert a qualitative claim, printing rather than panicking (harnesses
/// should report shape violations without aborting the whole run).
pub fn check(claim: &str, ok: bool) {
    if ok {
        println!("  [shape OK] {claim}");
    } else {
        println!("  [SHAPE VIOLATION] {claim}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_reports_without_panicking() {
        check("a true claim", true);
        check("a false claim", false);
    }
}
