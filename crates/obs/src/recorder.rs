//! The run-level recorder: one object owning all three pillars plus the
//! previous-round state needed to turn absolute counters into per-round
//! deltas and per-node suspicion flags into raise/clear events.
//!
//! The simulator holds `Option<Box<Recorder>>` — `None` when tracing is
//! disabled, so every hook site is a single pointer test on the hot
//! path. The recorder itself never touches simulator state or RNG
//! streams: it only receives copies of values the simulator already
//! computed.

use crate::explain::{ExplainAcc, ExplainReport};
use crate::timeseries::{RoundSample, TimeSeries, KIND_NAMES};
use crate::trace::{JsonlSink, TraceEvent, TraceSink};
use crate::TraceConfig;
use std::collections::BTreeMap;

/// Absolute end-of-round readings handed to [`Recorder::round`]. All
/// counters are run totals; the recorder differences them against the
/// previous round.
#[derive(Debug, Clone, Default)]
pub struct RoundInput {
    /// Sim time (ms).
    pub t_ms: f64,
    /// Cluster-average utilization per resource kind (index order of
    /// [`KIND_NAMES`]).
    pub util_avg: [f64; KIND_NAMES.len()],
    /// Cross-node p95 utilization per resource kind.
    pub util_p95: [f64; KIND_NAMES.len()],
    /// Queries waiting in the admission queue right now.
    pub admission_backlog: u32,
    /// Admitted subqueries waiting for an MPL slot right now.
    pub mpl_backlog: u32,
    /// Age (ms) of the oldest waiting admission ticket (0 when empty).
    pub oldest_wait_ms: f64,
    /// Nodes currently suspected by the failure detector.
    pub suspected: u32,
    /// Cluster size.
    pub n_nodes: u32,
    /// Active complex-query placement policy name.
    pub policy: &'static str,
    /// Cumulative policy switches so far.
    pub policy_switches: u64,
    /// Run-total arrivals.
    pub arrivals_total: u64,
    /// Run-total admission rejections.
    pub rejections_total: u64,
    /// Run-total shrunk admissions.
    pub shrunk_total: u64,
    /// Run-total query completions.
    pub completions_total: u64,
}

/// Everything a traced run produced, extracted after `finalize`.
#[derive(Debug, Clone)]
pub struct TraceOutput {
    /// The per-round cluster time series.
    pub timeseries: TimeSeries,
    /// Lifecycle events as rendered JSONL lines.
    pub events: Vec<String>,
    /// Events discarded after the retention cap.
    pub events_dropped: u64,
    /// Per-policy placement digest.
    pub explain: Vec<ExplainReport>,
}

/// Per-run observability state (see module docs).
#[derive(Debug, Clone)]
pub struct Recorder {
    series: TimeSeries,
    sink: JsonlSink,
    explain: ExplainAcc,
    round: u64,
    tickets: BTreeMap<u64, u64>,
    next_ticket: u64,
    prev_suspected: Vec<bool>,
    prev_policy_switches: u64,
    prev: RoundInput,
    inflight_migrations: u32,
    chosen_scratch: Vec<(u32, f64)>,
    p95_scratch: Vec<f64>,
}

impl Recorder {
    /// A recorder for a cluster of `n_nodes`, sized per `cfg`.
    pub fn new(cfg: TraceConfig, n_nodes: usize) -> Recorder {
        Recorder {
            series: TimeSeries::new(cfg.rounds_cap()),
            sink: JsonlSink::new(cfg.events_cap()),
            explain: ExplainAcc::new(n_nodes, cfg.top_k()),
            round: 0,
            tickets: BTreeMap::new(),
            next_ticket: 0,
            prev_suspected: vec![false; n_nodes],
            prev_policy_switches: 0,
            prev: RoundInput::default(),
            inflight_migrations: 0,
            chosen_scratch: Vec::new(),
            p95_scratch: Vec::new(),
        }
    }

    /// A query arrived and was submitted to admission control. Returns
    /// the ticket number assigned to it.
    pub fn arrival(&mut self, t_ms: f64, job: u64, class: &str) -> u64 {
        self.next_ticket += 1;
        let ticket = self.next_ticket;
        self.tickets.insert(job, ticket);
        self.sink.emit(&TraceEvent::Arrival {
            t_ms,
            job,
            class: class.to_string(),
            ticket,
        });
        ticket
    }

    /// Admission control released `job` after `wait_ms` in the queue.
    pub fn admitted(&mut self, t_ms: f64, job: u64, wait_ms: f64, degree_cap: u32) {
        let ticket = self.tickets.get(&job).copied().unwrap_or(0);
        self.sink.emit(&TraceEvent::Admitted {
            t_ms,
            job,
            ticket,
            wait_ms,
            degree_cap,
        });
    }

    /// Admission control rejected `job`.
    pub fn rejected(&mut self, t_ms: f64, job: u64) {
        let ticket = self.tickets.remove(&job).unwrap_or(0);
        self.sink.emit(&TraceEvent::Rejected { t_ms, job, ticket });
    }

    /// The broker placed stage `stage` of `job` under `policy`.
    /// `candidate_scores[n]` is node `n`'s bottleneck score (max per-kind
    /// utilization) at decision time; `chosen` is the placement result.
    pub fn placement(
        &mut self,
        t_ms: f64,
        job: u64,
        stage: u32,
        policy: &'static str,
        candidate_scores: &[f64],
        chosen: &[u32],
    ) {
        // Two smallest candidate scores in one pass.
        let mut best = f64::INFINITY;
        let mut runner_up = f64::INFINITY;
        for &s in candidate_scores {
            if s < best {
                runner_up = best;
                best = s;
            } else if s < runner_up {
                runner_up = s;
            }
        }
        if !best.is_finite() {
            best = 0.0;
        }
        if !runner_up.is_finite() {
            runner_up = best;
        }
        self.chosen_scratch.clear();
        for &n in chosen {
            let score = candidate_scores.get(n as usize).copied().unwrap_or(0.0);
            self.chosen_scratch.push((n, score));
        }
        self.explain
            .decision(policy, &self.chosen_scratch, best, runner_up);
        if stage > 0 {
            self.sink.emit(&TraceEvent::StageEdge { t_ms, job, stage });
        }
        self.sink.emit(&TraceEvent::Placement {
            t_ms,
            job,
            stage,
            policy,
            nodes: chosen.to_vec(),
            best_score: best,
            runner_up_score: runner_up,
            margin: (runner_up - best).max(0.0),
        });
    }

    /// `job` completed with response time `resp_ms`.
    pub fn completed(&mut self, t_ms: f64, job: u64, class: &str, resp_ms: f64) {
        self.tickets.remove(&job);
        self.sink.emit(&TraceEvent::Completed {
            t_ms,
            job,
            class: class.to_string(),
            resp_ms,
        });
    }

    /// `job` was aborted (it may retry under the same ticket).
    pub fn aborted(&mut self, t_ms: f64, job: u64) {
        self.sink.emit(&TraceEvent::Aborted { t_ms, job });
    }

    /// Report node `node`'s current suspicion flag; emits a raise/clear
    /// event when it differs from the previous round.
    pub fn suspicion(&mut self, t_ms: f64, node: u32, suspected: bool) {
        let idx = node as usize;
        if idx >= self.prev_suspected.len() {
            return;
        }
        if self.prev_suspected[idx] != suspected {
            self.prev_suspected[idx] = suspected;
            self.sink.emit(&TraceEvent::Suspicion {
                t_ms,
                node,
                raised: suspected,
            });
        }
    }

    /// The rebalancer started a fragment migration.
    pub fn migration_start(&mut self, t_ms: f64, from: u32, to: u32, tuples: u64) {
        self.inflight_migrations += 1;
        self.sink.emit(&TraceEvent::MigrationStart {
            t_ms,
            from,
            to,
            tuples,
        });
    }

    /// A fragment migration ended. Decrements the in-flight gauge either
    /// way; a commit event is emitted only when the move actually
    /// transferred (a give-up still frees the migration slot).
    pub fn migration_end(&mut self, t_ms: f64, from: u32, to: u32, tuples: u64, committed: bool) {
        self.inflight_migrations = self.inflight_migrations.saturating_sub(1);
        if committed {
            self.sink.emit(&TraceEvent::MigrationCommit {
                t_ms,
                from,
                to,
                tuples,
            });
        }
    }

    /// Cross-node p95 helper: ceil-rank quantile over a utilization
    /// slice, using an internal scratch buffer so callers stay
    /// allocation-free once the scratch is warm.
    pub fn cross_node_p95(&mut self, utils: &[f64]) -> f64 {
        if utils.is_empty() {
            return 0.0;
        }
        self.p95_scratch.clear();
        self.p95_scratch.extend_from_slice(utils);
        self.p95_scratch.sort_unstable_by(f64::total_cmp);
        let rank = ((self.p95_scratch.len() as f64) * 0.95).ceil() as usize;
        self.p95_scratch[rank.clamp(1, self.p95_scratch.len()) - 1]
    }

    /// Close out a broker report round: emit a policy-switch event if the
    /// switch counter advanced, difference the run-total counters, and
    /// offer the sample to the bounded time series.
    pub fn round(&mut self, input: RoundInput) {
        if input.policy_switches > self.prev_policy_switches {
            self.prev_policy_switches = input.policy_switches;
            self.sink.emit(&TraceEvent::PolicySwitch {
                t_ms: input.t_ms,
                policy: input.policy,
                switches: input.policy_switches,
            });
        }
        let sample = RoundSample {
            t_ms: input.t_ms,
            round: self.round,
            util_avg: input.util_avg.to_vec(),
            util_p95: input.util_p95.to_vec(),
            admission_backlog: input.admission_backlog,
            mpl_backlog: input.mpl_backlog,
            oldest_wait_ms: input.oldest_wait_ms,
            live_nodes: input.n_nodes.saturating_sub(input.suspected),
            suspected_nodes: input.suspected,
            inflight_migrations: self.inflight_migrations,
            arrivals: input.arrivals_total - self.prev.arrivals_total,
            rejections: input.rejections_total - self.prev.rejections_total,
            shrunk: input.shrunk_total - self.prev.shrunk_total,
            completions: input.completions_total - self.prev.completions_total,
            policy: input.policy.to_string(),
        };
        self.round += 1;
        self.prev = input;
        self.series.offer(sample);
    }

    /// Extract the run's outputs.
    pub fn finish(self) -> TraceOutput {
        TraceOutput {
            timeseries: self.series,
            events: self.sink.lines,
            events_dropped: self.sink.dropped,
            explain: self.explain.report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_difference_counters_and_emit_policy_switches() {
        let mut r = Recorder::new(TraceConfig::on(), 4);
        r.round(RoundInput {
            t_ms: 100.0,
            arrivals_total: 10,
            completions_total: 3,
            policy: "LUB",
            policy_switches: 0,
            n_nodes: 4,
            ..RoundInput::default()
        });
        r.round(RoundInput {
            t_ms: 200.0,
            arrivals_total: 25,
            completions_total: 9,
            policy: "LUM",
            policy_switches: 1,
            n_nodes: 4,
            suspected: 1,
            ..RoundInput::default()
        });
        let out = r.finish();
        assert_eq!(out.timeseries.samples.len(), 2);
        assert_eq!(out.timeseries.samples[0].arrivals, 10);
        assert_eq!(out.timeseries.samples[1].arrivals, 15);
        assert_eq!(out.timeseries.samples[1].completions, 6);
        assert_eq!(out.timeseries.samples[1].live_nodes, 3);
        assert_eq!(
            out.events.len(),
            1,
            "one policy-switch event: {:?}",
            out.events
        );
        assert!(out.events[0].contains("policy_switch"));
    }

    #[test]
    fn suspicion_diffs_emit_only_on_change() {
        let mut r = Recorder::new(TraceConfig::on(), 2);
        r.suspicion(1.0, 0, false);
        r.suspicion(2.0, 0, true);
        r.suspicion(3.0, 0, true);
        r.suspicion(4.0, 0, false);
        let out = r.finish();
        assert_eq!(out.events.len(), 2);
        assert!(out.events[0].contains("\"raised\":true"));
        assert!(out.events[1].contains("\"raised\":false"));
    }

    #[test]
    fn placement_margin_and_explain_flow() {
        let mut r = Recorder::new(TraceConfig::on(), 3);
        r.placement(5.0, 42, 0, "LUB", &[0.9, 0.2, 0.5], &[1]);
        let out = r.finish();
        assert_eq!(out.explain.len(), 1);
        assert_eq!(out.explain[0].decisions, 1);
        assert!((out.explain[0].margin_mean - 0.3).abs() < 1e-12);
        assert_eq!(out.explain[0].top_nodes[0].node, 1);
        assert!(out.events[0].contains("\"margin\":0.3"));
    }

    #[test]
    fn ticket_numbers_follow_the_span() {
        let mut r = Recorder::new(TraceConfig::on(), 2);
        let t1 = r.arrival(0.0, 100, "q-join");
        let t2 = r.arrival(1.0, 101, "q-join");
        assert_eq!((t1, t2), (1, 2));
        r.admitted(2.0, 101, 1.0, 4);
        r.completed(9.0, 101, "q-join", 8.0);
        let out = r.finish();
        assert!(out.events[2].contains("\"ticket\":2"));
    }

    #[test]
    fn cross_node_p95_is_ceil_rank() {
        let mut r = Recorder::new(TraceConfig::on(), 4);
        let utils: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        assert!((r.cross_node_p95(&utils) - 0.95).abs() < 1e-12);
        assert_eq!(r.cross_node_p95(&[]), 0.0);
        assert!((r.cross_node_p95(&[0.4]) - 0.4).abs() < 1e-12);
    }
}
