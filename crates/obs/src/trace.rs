//! Structured lifecycle tracing.
//!
//! The simulator narrates a run as a stream of [`TraceEvent`]s: per-query
//! spans (arrival → admission verdict → placement decision → stage edges
//! → completion/abort) and control-plane events (policy switch, suspicion
//! raise/clear, migration start/commit). Events are pushed through the
//! [`TraceSink`] trait; the stock [`JsonlSink`] renders each event as one
//! JSON line and stores at most a configured number of lines, counting
//! the rest as dropped. All timestamps are simulated milliseconds.

use serde_json::{json, Value};

/// One lifecycle or control-plane event, stamped with sim time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A query entered the system and was handed to admission control.
    Arrival {
        /// Sim time (ms).
        t_ms: f64,
        /// Simulator job id.
        job: u64,
        /// Workload-class name.
        class: String,
        /// Monotone admission ticket number assigned at submit.
        ticket: u64,
    },
    /// Admission control released the query to its coordinator.
    Admitted {
        /// Sim time (ms).
        t_ms: f64,
        /// Simulator job id.
        job: u64,
        /// Ticket number assigned at arrival.
        ticket: u64,
        /// Queue wait between submit and admission (ms).
        wait_ms: f64,
        /// Degree cap granted by the admission policy (0 = unchanged).
        degree_cap: u32,
    },
    /// Admission control rejected the query (queue full / reservation).
    Rejected {
        /// Sim time (ms).
        t_ms: f64,
        /// Simulator job id.
        job: u64,
        /// Ticket number assigned at arrival.
        ticket: u64,
    },
    /// The broker answered a placement request.
    Placement {
        /// Sim time (ms).
        t_ms: f64,
        /// Simulator job id.
        job: u64,
        /// Multi-join stage ordinal the placement is for.
        stage: u32,
        /// Active placement policy name.
        policy: &'static str,
        /// Chosen processing nodes.
        nodes: Vec<u32>,
        /// Best candidate's bottleneck score (max per-kind utilization).
        best_score: f64,
        /// Runner-up candidate's bottleneck score.
        runner_up_score: f64,
        /// `runner_up_score - best_score` (≥ 0: how clear the win was).
        margin: f64,
    },
    /// A multi-join query crossed into its next stage.
    StageEdge {
        /// Sim time (ms).
        t_ms: f64,
        /// Simulator job id.
        job: u64,
        /// Stage ordinal being entered.
        stage: u32,
    },
    /// A query finished.
    Completed {
        /// Sim time (ms).
        t_ms: f64,
        /// Simulator job id.
        job: u64,
        /// Workload-class name.
        class: String,
        /// Response time (ms).
        resp_ms: f64,
    },
    /// A query was aborted (deadlock victim) and will retry.
    Aborted {
        /// Sim time (ms).
        t_ms: f64,
        /// Simulator job id.
        job: u64,
    },
    /// ADAPTIVE switched the active placement policy.
    PolicySwitch {
        /// Sim time (ms).
        t_ms: f64,
        /// Newly active policy name.
        policy: &'static str,
        /// Cumulative switch count after this switch.
        switches: u64,
    },
    /// The failure detector raised or cleared suspicion on a node.
    Suspicion {
        /// Sim time (ms).
        t_ms: f64,
        /// Node id.
        node: u32,
        /// `true` = raised, `false` = cleared.
        raised: bool,
    },
    /// The rebalancer started moving a fragment.
    MigrationStart {
        /// Sim time (ms).
        t_ms: f64,
        /// Source node.
        from: u32,
        /// Destination node.
        to: u32,
        /// Tuples in the fragment.
        tuples: u64,
    },
    /// A fragment migration committed at its destination.
    MigrationCommit {
        /// Sim time (ms).
        t_ms: f64,
        /// Source node.
        from: u32,
        /// Destination node.
        to: u32,
        /// Tuples moved.
        tuples: u64,
    },
}

impl TraceEvent {
    /// Event-kind tag used as the JSONL `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::Admitted { .. } => "admitted",
            TraceEvent::Rejected { .. } => "rejected",
            TraceEvent::Placement { .. } => "placement",
            TraceEvent::StageEdge { .. } => "stage_edge",
            TraceEvent::Completed { .. } => "completed",
            TraceEvent::Aborted { .. } => "aborted",
            TraceEvent::PolicySwitch { .. } => "policy_switch",
            TraceEvent::Suspicion { .. } => "suspicion",
            TraceEvent::MigrationStart { .. } => "migration_start",
            TraceEvent::MigrationCommit { .. } => "migration_commit",
        }
    }

    /// Render as a single JSON object (one JSONL line when serialized).
    pub fn to_json(&self) -> Value {
        match self {
            TraceEvent::Arrival {
                t_ms,
                job,
                class,
                ticket,
            } => json!({
                "ev": self.kind(), "t_ms": t_ms, "job": job,
                "class": class, "ticket": ticket,
            }),
            TraceEvent::Admitted {
                t_ms,
                job,
                ticket,
                wait_ms,
                degree_cap,
            } => json!({
                "ev": self.kind(), "t_ms": t_ms, "job": job,
                "ticket": ticket, "wait_ms": wait_ms, "degree_cap": degree_cap,
            }),
            TraceEvent::Rejected { t_ms, job, ticket } => json!({
                "ev": self.kind(), "t_ms": t_ms, "job": job, "ticket": ticket,
            }),
            TraceEvent::Placement {
                t_ms,
                job,
                stage,
                policy,
                nodes,
                best_score,
                runner_up_score,
                margin,
            } => json!({
                "ev": self.kind(), "t_ms": t_ms, "job": job, "stage": stage,
                "policy": policy, "nodes": nodes, "best_score": best_score,
                "runner_up_score": runner_up_score, "margin": margin,
            }),
            TraceEvent::StageEdge { t_ms, job, stage } => json!({
                "ev": self.kind(), "t_ms": t_ms, "job": job, "stage": stage,
            }),
            TraceEvent::Completed {
                t_ms,
                job,
                class,
                resp_ms,
            } => json!({
                "ev": self.kind(), "t_ms": t_ms, "job": job,
                "class": class, "resp_ms": resp_ms,
            }),
            TraceEvent::Aborted { t_ms, job } => json!({
                "ev": self.kind(), "t_ms": t_ms, "job": job,
            }),
            TraceEvent::PolicySwitch {
                t_ms,
                policy,
                switches,
            } => json!({
                "ev": self.kind(), "t_ms": t_ms, "policy": policy,
                "switches": switches,
            }),
            TraceEvent::Suspicion { t_ms, node, raised } => json!({
                "ev": self.kind(), "t_ms": t_ms, "node": node, "raised": raised,
            }),
            TraceEvent::MigrationStart {
                t_ms,
                from,
                to,
                tuples,
            }
            | TraceEvent::MigrationCommit {
                t_ms,
                from,
                to,
                tuples,
            } => json!({
                "ev": self.kind(), "t_ms": t_ms, "from": from, "to": to,
                "tuples": tuples,
            }),
        }
    }
}

/// Consumer of lifecycle events. The simulator only ever talks to this
/// trait, so alternative sinks (stdout tee, in-memory assertions in
/// tests) drop in without touching the emission sites.
pub trait TraceSink {
    /// Consume one event.
    fn emit(&mut self, ev: &TraceEvent);
}

/// Bounded JSONL sink: stores up to `cap` rendered lines, counts the
/// overflow as dropped.
#[derive(Debug, Clone, Default)]
pub struct JsonlSink {
    /// Rendered JSON lines, in emission order.
    pub lines: Vec<String>,
    /// Events discarded after the cap was reached.
    pub dropped: u64,
    cap: usize,
}

impl JsonlSink {
    /// A sink retaining at most `cap` lines.
    pub fn new(cap: usize) -> JsonlSink {
        JsonlSink {
            lines: Vec::new(),
            dropped: 0,
            cap,
        }
    }
}

impl TraceSink for JsonlSink {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.lines.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let line = serde_json::to_string(&ev.to_json()).unwrap_or_default();
        self.lines.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_parseable_and_tagged() {
        let mut sink = JsonlSink::new(16);
        sink.emit(&TraceEvent::Arrival {
            t_ms: 1.5,
            job: 7,
            class: "q-join".to_string(),
            ticket: 3,
        });
        sink.emit(&TraceEvent::Suspicion {
            t_ms: 2.0,
            node: 4,
            raised: true,
        });
        assert_eq!(sink.lines.len(), 2);
        let v: Value = serde_json::from_str(&sink.lines[0]).unwrap();
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("arrival"));
        let v: Value = serde_json::from_str(&sink.lines[1]).unwrap();
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("suspicion"));
    }

    #[test]
    fn sink_caps_and_counts_drops() {
        let mut sink = JsonlSink::new(2);
        for j in 0..5 {
            sink.emit(&TraceEvent::Aborted { t_ms: 0.0, job: j });
        }
        assert_eq!(sink.lines.len(), 2);
        assert_eq!(sink.dropped, 3);
    }
}
