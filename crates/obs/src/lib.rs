//! Deterministic, sim-time-stamped observability for the simulator.
//!
//! Three pillars, all clocked by the simulation itself and none touching
//! a random-number stream:
//!
//! 1. **Time-series recorder** ([`timeseries`]): one [`RoundSample`] per
//!    broker report round — per-resource average/p95 utilization, the
//!    admission and MPL backlogs, live/suspected node counts, in-flight
//!    migrations, and per-round deltas of the arrival/rejection/shrink
//!    counters. A deterministic stride-doubling reservoir bounds memory
//!    on 1000-PE soaks.
//! 2. **Lifecycle tracing** ([`trace`]): per-query spans (arrival →
//!    admission verdict → placement decision → stage edges →
//!    completion/abort) and control-plane events (policy switch,
//!    suspicion raise/clear, migration start/commit) rendered as bounded
//!    JSONL through the [`TraceSink`] trait.
//! 3. **Placement explain** ([`explain`]): per-policy decision counts,
//!    the win margin between the best and runner-up candidate scores,
//!    and per-node win tallies for a top-K "why node X" digest.
//!
//! The layer is **inert when disabled**: the simulator holds an
//! `Option<Box<Recorder>>` that is `None` unless [`TraceConfig::enabled`]
//! is set, so the disabled hot path costs one pointer test and performs
//! no allocation. Every timestamp is simulated milliseconds; wall time
//! never appears in any output.

#![deny(missing_docs)]

pub mod explain;
pub mod recorder;
pub mod timeseries;
pub mod trace;

pub use explain::{ExplainAcc, ExplainReport, NodeDigest, PolicyExplain};
pub use recorder::{Recorder, RoundInput, TraceOutput};
pub use timeseries::{RoundSample, TimeSeries, KIND_NAMES};
pub use trace::{JsonlSink, TraceEvent, TraceSink};

use serde::{Deserialize, Serialize};

/// Observability selection knob, carried by the scenario `Knobs` and the
/// simulator configuration. The default (`enabled: false`) keeps the
/// layer compiled in but completely inert; the cap fields use `0` to
/// mean "library default" so a bare `{ "enabled": true }` knob works.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct TraceConfig {
    /// Install the recorder for this run.
    pub enabled: bool,
    /// Cap on retained time-series rounds (`0` = default 4096). When the
    /// cap is reached the reservoir decimates to every other sample and
    /// doubles its stride, so long soaks keep a bounded, evenly spaced
    /// series.
    pub max_rounds: u32,
    /// Cap on retained JSONL trace events (`0` = default 65536). Events
    /// past the cap are counted as dropped, not stored.
    pub max_events: u32,
    /// Nodes listed in the per-policy "why node X" digest (`0` = default 5).
    pub explain_top_k: u32,
}

impl TraceConfig {
    /// An enabled configuration with library-default caps.
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Retained-round cap with the `0 = default` convention applied.
    pub fn rounds_cap(&self) -> usize {
        if self.max_rounds == 0 {
            4096
        } else {
            self.max_rounds as usize
        }
    }

    /// Retained-event cap with the `0 = default` convention applied.
    pub fn events_cap(&self) -> usize {
        if self.max_events == 0 {
            65536
        } else {
            self.max_events as usize
        }
    }

    /// Digest size with the `0 = default` convention applied.
    pub fn top_k(&self) -> usize {
        if self.explain_top_k == 0 {
            5
        } else {
            self.explain_top_k as usize
        }
    }

    /// Short human label for run tags (mirrors `BrokerConfig::label`).
    pub fn label(&self) -> String {
        if !self.enabled {
            return "off".to_string();
        }
        let mut parts = Vec::new();
        if self.max_rounds != 0 {
            parts.push(format!("rounds={}", self.max_rounds));
        }
        if self.max_events != 0 {
            parts.push(format!("events={}", self.max_events));
        }
        if self.explain_top_k != 0 {
            parts.push(format!("k={}", self.explain_top_k));
        }
        if parts.is_empty() {
            "on".to_string()
        } else {
            format!("on({})", parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_roundtrips() {
        let d = TraceConfig::default();
        assert!(!d.enabled);
        let s = serde_json::to_string(&d).unwrap();
        let back: TraceConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn empty_object_deserializes_to_default() {
        let back: TraceConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(back, TraceConfig::default());
        let on: TraceConfig = serde_json::from_str("{\"enabled\": true}").unwrap();
        assert_eq!(on, TraceConfig::on());
    }

    #[test]
    fn labels() {
        assert_eq!(TraceConfig::default().label(), "off");
        assert_eq!(TraceConfig::on().label(), "on");
        let custom = TraceConfig {
            enabled: true,
            max_rounds: 128,
            ..TraceConfig::default()
        };
        assert_eq!(custom.label(), "on(rounds=128)");
    }

    #[test]
    fn zero_caps_resolve_to_defaults() {
        let d = TraceConfig::default();
        assert_eq!(d.rounds_cap(), 4096);
        assert_eq!(d.events_cap(), 65536);
        assert_eq!(d.top_k(), 5);
        let c = TraceConfig {
            enabled: true,
            max_rounds: 7,
            max_events: 9,
            explain_top_k: 2,
        };
        assert_eq!(c.rounds_cap(), 7);
        assert_eq!(c.events_cap(), 9);
        assert_eq!(c.top_k(), 2);
    }
}
