//! Per-report-round cluster samples with a bounded deterministic
//! reservoir.
//!
//! The time series is clocked by broker report rounds (the control
//! cadence), not wall time: every round contributes at most one
//! [`RoundSample`]. To keep 1000-PE soaks affordable the series holds at
//! most `cap` samples; on overflow it drops every other retained sample
//! and doubles its stride, so the survivors stay evenly spaced over the
//! whole run and the result is a pure function of the offered sequence.

use serde::{Deserialize, Serialize};

/// Resource-kind column names, in `ResourceKind` index order. The
/// simulator fills [`RoundSample::util_avg`] / [`RoundSample::util_p95`]
/// in this order.
pub const KIND_NAMES: [&str; 4] = ["cpu", "mem", "disk", "net"];

/// One cluster-wide sample, taken at the end of a broker report round.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoundSample {
    /// Simulated milliseconds since run start.
    pub t_ms: f64,
    /// Report-round ordinal (0-based).
    pub round: u64,
    /// Cluster-average utilization per resource kind ([`KIND_NAMES`] order).
    pub util_avg: Vec<f64>,
    /// Cross-node p95 utilization per resource kind ([`KIND_NAMES`] order).
    pub util_p95: Vec<f64>,
    /// Queries waiting in the admission queue.
    pub admission_backlog: u32,
    /// Admitted subqueries waiting for an MPL slot on their coordinator.
    pub mpl_backlog: u32,
    /// Age (ms) of the oldest ticket still waiting in the admission
    /// queue — the backlog-knee signal (0 with an empty queue).
    pub oldest_wait_ms: f64,
    /// Nodes the control plane currently trusts.
    pub live_nodes: u32,
    /// Nodes the failure detector currently suspects.
    pub suspected_nodes: u32,
    /// Fragment migrations started but not yet committed.
    pub inflight_migrations: u32,
    /// Arrivals since the previous sample.
    pub arrivals: u64,
    /// Admission rejections since the previous sample.
    pub rejections: u64,
    /// Shrunk (degree-reduced) admissions since the previous sample.
    pub shrunk: u64,
    /// Query completions since the previous sample.
    pub completions: u64,
    /// Active placement policy name for complex queries.
    pub policy: String,
}

/// Bounded, deterministic time series of [`RoundSample`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Retained samples, oldest first.
    pub samples: Vec<RoundSample>,
    /// Rounds offered (retained + skipped + dropped by decimation).
    pub rounds_seen: u64,
    /// Current keep-stride: a sample is retained iff its round ordinal is
    /// a multiple of this.
    pub stride: u64,
    cap: usize,
}

impl TimeSeries {
    /// A series retaining at most `cap` samples (`cap` is clamped to ≥ 2
    /// so decimation always makes progress).
    pub fn new(cap: usize) -> TimeSeries {
        TimeSeries {
            samples: Vec::new(),
            rounds_seen: 0,
            stride: 1,
            cap: cap.max(2),
        }
    }

    /// Offer the next round's sample. `sample.round` must be the number
    /// of samples offered so far (the caller's round counter); offers not
    /// on the current stride are counted but not stored.
    pub fn offer(&mut self, sample: RoundSample) {
        let keep = self.rounds_seen.is_multiple_of(self.stride);
        self.rounds_seen += 1;
        if !keep {
            return;
        }
        if self.samples.len() == self.cap {
            // Keep indices 0, 2, 4, … — every survivor is still a
            // multiple of the (doubled) stride.
            let mut i = 0;
            self.samples.retain(|_| {
                let k = i % 2 == 0;
                i += 1;
                k
            });
            self.stride *= 2;
            if self.samples.len() == self.cap {
                // cap < 2 cannot happen (clamped), so decimation shrank us.
                return;
            }
            // The freshly offered round may no longer sit on the doubled
            // stride; drop it if so.
            if !(self.rounds_seen - 1).is_multiple_of(self.stride) {
                return;
            }
        }
        self.samples.push(sample);
    }

    /// Retained-sample cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(round: u64) -> RoundSample {
        RoundSample {
            round,
            t_ms: round as f64 * 100.0,
            ..RoundSample::default()
        }
    }

    #[test]
    fn below_cap_keeps_everything() {
        let mut ts = TimeSeries::new(8);
        for r in 0..8 {
            ts.offer(s(r));
        }
        assert_eq!(ts.samples.len(), 8);
        assert_eq!(ts.stride, 1);
        assert_eq!(ts.rounds_seen, 8);
    }

    #[test]
    fn overflow_decimates_and_doubles_stride() {
        let mut ts = TimeSeries::new(8);
        for r in 0..64 {
            ts.offer(s(r));
        }
        assert_eq!(ts.rounds_seen, 64);
        assert!(ts.samples.len() <= 8, "len {} > cap", ts.samples.len());
        // Survivors are evenly spaced on the final stride.
        for w in ts.samples.windows(2) {
            assert_eq!(w[1].round - w[0].round, ts.stride);
        }
        assert_eq!(ts.samples[0].round, 0);
    }

    #[test]
    fn deterministic_for_same_sequence() {
        let run = |n: u64| {
            let mut ts = TimeSeries::new(16);
            for r in 0..n {
                ts.offer(s(r));
            }
            ts.samples.iter().map(|x| x.round).collect::<Vec<_>>()
        };
        assert_eq!(run(1000), run(1000));
    }
}
