//! Placement-decision explain: turn per-decision candidate scores into a
//! per-policy digest.
//!
//! For every placement the simulator reports the active policy, the
//! chosen nodes, and the bottleneck score (max per-kind utilization, the
//! quantity LUB-style selection minimizes) of the best and runner-up
//! candidates. The accumulator keeps per-policy decision counts, running
//! win-margin statistics, and per-node win tallies; [`ExplainAcc::report`]
//! renders those into a top-K "why node X" digest.

use serde::{Deserialize, Serialize};

/// Running accumulator for one placement policy.
#[derive(Debug, Clone)]
pub struct PolicyExplain {
    /// Policy name (as reported by the broker).
    pub policy: &'static str,
    /// Placement decisions attributed to this policy.
    pub decisions: u64,
    /// Sum of win margins (runner-up score − best score).
    pub margin_sum: f64,
    /// Smallest win margin seen.
    pub margin_min: f64,
    /// Largest win margin seen.
    pub margin_max: f64,
    /// Decisions with a strictly positive margin (a clear winner).
    pub clear_wins: u64,
    /// Per-node win count and score sum at win time, indexed by node id.
    wins: Vec<(u64, f64)>,
}

impl PolicyExplain {
    fn new(policy: &'static str, n_nodes: usize) -> PolicyExplain {
        PolicyExplain {
            policy,
            decisions: 0,
            margin_sum: 0.0,
            margin_min: f64::INFINITY,
            margin_max: 0.0,
            clear_wins: 0,
            wins: vec![(0, 0.0); n_nodes],
        }
    }

    /// Mean win margin over all decisions (0 with no decisions).
    pub fn margin_mean(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.margin_sum / self.decisions as f64
        }
    }
}

/// Per-node row of the rendered digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeDigest {
    /// Node id.
    pub node: u32,
    /// Times this node was part of the chosen set.
    pub wins: u64,
    /// Mean bottleneck score of the node at the moments it won (lower is
    /// less loaded — the "why": it kept winning because it stayed cheap).
    pub mean_score_at_win: f64,
}

/// Rendered per-policy digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainReport {
    /// Policy name.
    pub policy: String,
    /// Placement decisions attributed to this policy.
    pub decisions: u64,
    /// Mean win margin (runner-up − best bottleneck score).
    pub margin_mean: f64,
    /// Smallest win margin (0 with no decisions).
    pub margin_min: f64,
    /// Largest win margin.
    pub margin_max: f64,
    /// Decisions with a strictly positive margin.
    pub clear_wins: u64,
    /// Top-K nodes by win count.
    pub top_nodes: Vec<NodeDigest>,
}

/// Accumulator over all policies seen in a run.
#[derive(Debug, Clone)]
pub struct ExplainAcc {
    policies: Vec<PolicyExplain>,
    n_nodes: usize,
    top_k: usize,
}

impl ExplainAcc {
    /// An accumulator for a cluster of `n_nodes`, reporting `top_k` nodes
    /// per policy.
    pub fn new(n_nodes: usize, top_k: usize) -> ExplainAcc {
        ExplainAcc {
            policies: Vec::new(),
            n_nodes,
            top_k,
        }
    }

    /// Record one placement decision: the winning nodes with their scores
    /// at decision time, and the margin to the runner-up candidate.
    pub fn decision(
        &mut self,
        policy: &'static str,
        chosen: &[(u32, f64)],
        best_score: f64,
        runner_up_score: f64,
    ) {
        let p = match self.policies.iter_mut().find(|p| p.policy == policy) {
            Some(p) => p,
            None => {
                self.policies.push(PolicyExplain::new(policy, self.n_nodes));
                self.policies.last_mut().expect("just pushed")
            }
        };
        p.decisions += 1;
        let margin = (runner_up_score - best_score).max(0.0);
        p.margin_sum += margin;
        p.margin_min = p.margin_min.min(margin);
        p.margin_max = p.margin_max.max(margin);
        if margin > 0.0 {
            p.clear_wins += 1;
        }
        for &(node, score) in chosen {
            if let Some(w) = p.wins.get_mut(node as usize) {
                w.0 += 1;
                w.1 += score;
            }
        }
    }

    /// Render the digest: one [`ExplainReport`] per policy, each listing
    /// its top-K winning nodes.
    pub fn report(&self) -> Vec<ExplainReport> {
        self.policies
            .iter()
            .map(|p| {
                let mut nodes: Vec<NodeDigest> = p
                    .wins
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.0 > 0)
                    .map(|(node, w)| NodeDigest {
                        node: node as u32,
                        wins: w.0,
                        mean_score_at_win: w.1 / w.0 as f64,
                    })
                    .collect();
                nodes.sort_by(|a, b| b.wins.cmp(&a.wins).then(a.node.cmp(&b.node)));
                nodes.truncate(self.top_k);
                ExplainReport {
                    policy: p.policy.to_string(),
                    decisions: p.decisions,
                    margin_mean: p.margin_mean(),
                    margin_min: if p.decisions == 0 { 0.0 } else { p.margin_min },
                    margin_max: p.margin_max,
                    clear_wins: p.clear_wins,
                    top_nodes: nodes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_policy_and_ranks_nodes() {
        let mut acc = ExplainAcc::new(4, 2);
        acc.decision("LUB", &[(1, 0.2)], 0.2, 0.5);
        acc.decision("LUB", &[(1, 0.3), (2, 0.4)], 0.3, 0.3);
        acc.decision("LUM", &[(0, 0.1)], 0.1, 0.9);
        let reports = acc.report();
        assert_eq!(reports.len(), 2);
        let lub = reports.iter().find(|r| r.policy == "LUB").unwrap();
        assert_eq!(lub.decisions, 2);
        assert_eq!(lub.clear_wins, 1);
        assert!((lub.margin_mean - 0.15).abs() < 1e-12);
        assert_eq!(lub.top_nodes[0].node, 1);
        assert_eq!(lub.top_nodes[0].wins, 2);
        assert!((lub.top_nodes[0].mean_score_at_win - 0.25).abs() < 1e-12);
        assert_eq!(lub.top_nodes.len(), 2);
    }

    #[test]
    fn empty_policy_reports_zero_margins() {
        let acc = ExplainAcc::new(2, 5);
        assert!(acc.report().is_empty());
    }
}
