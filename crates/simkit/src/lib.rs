//! # simkit — deterministic discrete-event simulation kernel
//!
//! Building blocks for the Shared Nothing database simulator used in the
//! reproduction of *Rahm & Marek, "Dynamic Multi-Resource Load Balancing in
//! Parallel Database Systems", VLDB 1995*:
//!
//! * [`SimTime`] / [`SimDur`] — nanosecond-resolution simulated clock,
//! * [`EventHeap`] / [`CalendarQueue`] — future event lists with identical
//!   deterministic tie-breaking, selectable per run via [`QueueKind`],
//! * [`FcfsServer`] — queueing resources (CPUs, disks, NICs) with busy-time
//!   accounting and optional two-level priorities,
//! * [`SimRng`] — a seedable random source with the variates the workload
//!   model needs (exponential, uniform, Zipf, sampling without replacement),
//! * [`stats`] — online statistics (Welford mean/variance, time-weighted
//!   integrals, histograms, batch means for confidence intervals),
//! * [`Slab`] — a tiny generational id allocator for live jobs.
//!
//! All components are allocation-conscious and deterministic: the simulator
//! built on top is single-threaded, and two runs with equal seeds produce
//! bit-identical results.

pub mod calendar;
pub mod dispatch;
pub mod fxhash;
pub mod heap;
pub mod lanes;
pub mod lru;
pub mod rng;
pub mod server;
pub mod slab;
pub mod stats;
pub mod time;

pub use calendar::CalendarQueue;
pub use dispatch::{Dispatcher, EventQueue, QueueKind, Simulation};
pub use fxhash::{FxBuildHasher, FxHashMap};
pub use heap::EventHeap;
pub use lanes::{merge_commit, ItemKey, LaneLog, MergeCursor, MergeStep};
pub use lru::LruMap;
pub use rng::SimRng;
pub use server::{FcfsServer, Priority};
pub use slab::Slab;
pub use time::{SimDur, SimTime};
