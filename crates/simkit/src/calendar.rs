//! Calendar-queue future event list (Brown 1988).
//!
//! A bucketed timing wheel: events hash into `nbuckets` "days" by
//! `(time / width) % nbuckets`; one lap of the wheel is a "year" of
//! `nbuckets · width` nanoseconds. With the width tracking the average
//! inter-event gap (re-estimated at every resize), each day holds O(1)
//! events of the current year, so `push` is O(1) and `pop` is expected
//! O(1) — against O(log n) for the binary heap — at the cost of a full
//! scan fallback when the queue goes sparse.
//!
//! The queue implements the **same total order and API contract** as
//! [`crate::EventHeap`]: events pop in `(time, seq)` order, with `seq`
//! assigned at scheduling time (deterministic FIFO tie-breaking), and
//! scheduling before the causality watermark panics identically. The
//! dispatch loop peeks before every pop, so the current minimum is cached:
//! `peek` is O(1), and the day scan runs once per pop, not twice.
//! `crates/bench/benches/event_queue.rs` races the two implementations;
//! `tests/perf_parity.rs` proves whole-run Summaries are byte-identical.

use crate::time::SimTime;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

/// Location + key of the current minimum (always valid while `len > 0`:
/// pushes only append, and pops recompute it).
#[derive(Clone, Copy)]
struct MinLoc {
    time: SimTime,
    seq: u64,
    bucket: usize,
    slot: usize,
}

const MIN_BUCKETS: usize = 16;

/// Min-ordered future event list over a bucketed timing wheel.
pub struct CalendarQueue<T> {
    /// `buckets.len()` is a power of two; entries of *any* year share a
    /// day, and the scan filters by the current year.
    buckets: Vec<Vec<Entry<T>>>,
    /// Bucket width in nanoseconds (≥ 1).
    width: u64,
    len: usize,
    next_seq: u64,
    last_popped: SimTime,
    /// Virtual day of the watermark (`last_popped / width`): no live event
    /// hashes below it, so scans start here.
    cur_day: u64,
    cached_min: Option<MinLoc>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1024,
            len: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
            cur_day: 0,
            cached_min: None,
        }
    }

    /// Capacity is a hint for the initial wheel size; buckets still grow
    /// and shrink with the live event count.
    pub fn with_capacity(cap: usize) -> Self {
        let n = cap.next_power_of_two().clamp(MIN_BUCKETS, 1 << 20);
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            width: 1024,
            len: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
            cur_day: 0,
            cached_min: None,
        }
    }

    fn day_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.width
    }

    fn bucket_of(&self, t: SimTime) -> usize {
        (self.day_of(t) & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` lies before the time of the most recently popped
    /// event: scheduling into the past would silently corrupt causality.
    pub fn push(&mut self, time: SimTime, payload: T) {
        assert!(
            time >= self.last_popped,
            "event scheduled in the past: {} < {}",
            time,
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let b = self.bucket_of(time);
        let slot = self.buckets[b].len();
        self.buckets[b].push(Entry { time, seq, payload });
        self.len += 1;
        // A later seq never displaces an equal-time cached minimum (FIFO).
        if self
            .cached_min
            .is_none_or(|m| (time, seq) < (m.time, m.seq))
        {
            self.cached_min = Some(MinLoc {
                time,
                seq,
                bucket: b,
                slot,
            });
        }
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Pop the earliest event, advancing the internal causality watermark.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let min = self.cached_min?;
        let e = self.buckets[min.bucket].swap_remove(min.slot);
        debug_assert!(e.time >= self.last_popped);
        self.len -= 1;
        self.last_popped = e.time;
        self.cur_day = self.day_of(e.time);
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2); // recomputes the minimum
        } else {
            self.recompute_min();
        }
        Some((e.time, e.payload))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.cached_min.map(|m| m.time)
    }

    /// Time and payload of the next event without popping it.
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        let m = self.cached_min?;
        let e = &self.buckets[m.bucket][m.slot];
        Some((e.time, &e.payload))
    }

    /// `(time, seq)` key of the next event without popping it.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.cached_min.map(|m| (m.time, m.seq))
    }

    /// Pop the earliest event **without** advancing the causality
    /// watermark (or the scan day), exposing its sequence number. The
    /// windowed executor re-traverses the popped prefix, so later pushes
    /// may be timestamped inside it; leaving the watermark behind keeps
    /// those pushes legal, and a stale scan day only costs scan time.
    pub fn pop_raw(&mut self) -> Option<(SimTime, u64, T)> {
        let min = self.cached_min?;
        let e = self.buckets[min.bucket].swap_remove(min.slot);
        self.len -= 1;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        } else {
            self.recompute_min();
        }
        Some((e.time, e.seq, e.payload))
    }

    /// Reserve the next sequence number (see [`crate::EventHeap::alloc_seq`]).
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedule `payload` under a sequence number obtained from
    /// [`CalendarQueue::alloc_seq`] (windowed executor only).
    pub fn push_with_seq(&mut self, time: SimTime, seq: u64, payload: T) {
        debug_assert!(seq < self.next_seq, "seq must come from alloc_seq");
        assert!(
            time >= self.last_popped,
            "event scheduled in the past: {} < {}",
            time,
            self.last_popped
        );
        let b = self.bucket_of(time);
        let slot = self.buckets[b].len();
        self.buckets[b].push(Entry { time, seq, payload });
        self.len += 1;
        if self
            .cached_min
            .is_none_or(|m| (time, seq) < (m.time, m.seq))
        {
            self.cached_min = Some(MinLoc {
                time,
                seq,
                bucket: b,
                slot,
            });
        }
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (the next sequence number).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Find the new minimum: walk days from the watermark, scanning each
    /// day's bucket filtered to that year — expected O(1) at design load
    /// (≈1 event per day). After one empty lap the queue is sparse
    /// relative to the wheel: fall back to a full scan.
    fn recompute_min(&mut self) {
        self.cached_min = None;
        if self.len == 0 {
            return;
        }
        let mask = self.buckets.len() as u64 - 1;
        for day in self.cur_day..self.cur_day + self.buckets.len() as u64 {
            let b = (day & mask) as usize;
            let mut best: Option<MinLoc> = None;
            for (slot, e) in self.buckets[b].iter().enumerate() {
                if e.time.as_nanos() / self.width == day
                    && best.is_none_or(|m| (e.time, e.seq) < (m.time, m.seq))
                {
                    best = Some(MinLoc {
                        time: e.time,
                        seq: e.seq,
                        bucket: b,
                        slot,
                    });
                }
            }
            if best.is_some() {
                self.cached_min = best;
                return;
            }
        }
        let mut best: Option<MinLoc> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (slot, e) in bucket.iter().enumerate() {
                if best.is_none_or(|m| (e.time, e.seq) < (m.time, m.seq)) {
                    best = Some(MinLoc {
                        time: e.time,
                        seq: e.seq,
                        bucket: b,
                        slot,
                    });
                }
            }
        }
        self.cached_min = best;
    }

    /// Rebuild the wheel with `nbuckets` days and a width re-estimated
    /// from the live span (amortized O(1) per push/pop: rebuilds happen on
    /// power-of-two crossings only).
    fn resize(&mut self, nbuckets: usize) {
        let nbuckets = nbuckets.max(MIN_BUCKETS);
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        if !entries.is_empty() {
            let min = entries.iter().map(|e| e.time.as_nanos()).min().unwrap_or(0);
            let max = entries.iter().map(|e| e.time.as_nanos()).max().unwrap_or(0);
            // ≈4 live events per day of the year that spans the queue;
            // clamped so degenerate spans (all ties) stay serviceable.
            self.width = ((max - min) * 4 / entries.len() as u64).max(1);
        }
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.cur_day = self.last_popped.as_nanos() / self.width;
        for e in entries {
            let b = self.bucket_of(e.time);
            self.buckets[b].push(e);
        }
        self.recompute_min();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::EventHeap;
    use crate::time::SimDur;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = CalendarQueue::new();
        let t = SimTime(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(10), ());
        q.pop();
        q.push(SimTime(9), ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::ZERO + SimDur::from_millis(3), 1u8);
        q.push(SimTime::ZERO + SimDur::from_millis(1), 2u8);
        assert_eq!(q.peek_time(), Some(SimTime(1_000_000)));
        assert_eq!(q.pop().unwrap().0, SimTime(1_000_000));
    }

    #[test]
    fn counters() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ());
        q.push(SimTime(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn survives_growth_and_sparse_tails() {
        // Push far more events than the initial wheel, then drain dry:
        // exercises grow, shrink, the year filter, and the sparse
        // fallback (huge gap at the end).
        let mut q = CalendarQueue::new();
        for i in 0..500u64 {
            q.push(SimTime(i * 37 % 1009), i);
        }
        q.push(SimTime(1_000_000_000), 999);
        let mut last = (SimTime::ZERO, 0u64);
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            assert!(t > last.0 || (t == last.0 && i > last.1) || popped == 0);
            last = (t, i);
            popped += 1;
        }
        assert_eq!(popped, 501);
        assert_eq!(last, (SimTime(1_000_000_000), 999));
    }

    proptest! {
        /// Interleaved pushes and pops must replay the reference heap
        /// exactly — same times, same payload order on ties.
        #[test]
        fn prop_matches_event_heap(
            ops in proptest::collection::vec((0u64..3, 0u64..10_000), 1..400),
        ) {
            let mut cal = CalendarQueue::new();
            let mut heap = EventHeap::new();
            let mut clock = SimTime::ZERO;
            for (i, &(op, dt)) in ops.iter().enumerate() {
                if op == 0 {
                    // Pop from both (pushes outnumber pops 2:1).
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a.is_some(), b.is_some());
                    if let (Some((ta, pa)), Some((tb, pb))) = (a, b) {
                        prop_assert_eq!(ta, tb);
                        prop_assert_eq!(pa, pb);
                        clock = ta;
                    }
                } else {
                    let t = clock + crate::time::SimDur::from_nanos(dt);
                    cal.push(t, i);
                    heap.push(t, i);
                }
                prop_assert_eq!(cal.len(), heap.len());
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
            }
            // Drain both dry.
            while let (Some(a), Some(b)) = (cal.pop(), heap.pop()) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1, b.1);
            }
            prop_assert!(cal.is_empty() && heap.is_empty());
        }
    }
}
