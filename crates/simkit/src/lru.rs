//! An intrusive-list LRU map.
//!
//! Used for the disk-controller page caches and the global database buffer.
//! Entries live in a slab of nodes linked into a doubly-linked recency list;
//! a `HashMap` provides O(1) key lookup. Eviction returns the victim so the
//! caller can model write-back of dirty pages.

use crate::fxhash::FxHashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

struct Node<K, V> {
    key: K,
    value: Option<V>,
    prev: u32,
    next: u32,
}

/// Fixed-capacity LRU map.
pub struct LruMap<K, V> {
    map: FxHashMap<K, u32>,
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    head: u32, // most recent
    tail: u32, // least recent
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// Create an LRU with the given capacity (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be positive");
        LruMap {
            map: FxHashMap::with_capacity_and_hasher(capacity + 1, Default::default()),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[idx as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Look up `key`, marking it most-recently-used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.detach(idx);
            self.attach_front(idx);
        }
        self.nodes[idx as usize].value.as_ref()
    }

    /// Look up without touching recency (for inspection/statistics).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.nodes[idx as usize].value.as_ref()
    }

    /// Mutable lookup, marking MRU on hit.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.detach(idx);
            self.attach_front(idx);
        }
        self.nodes[idx as usize].value.as_mut()
    }

    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert `key → value` as MRU.
    ///
    /// Returns `Some((victim_key, victim_value))` if a *different* entry was
    /// evicted to make room; replacing an existing key returns `None` (the
    /// old value is dropped — page contents are not modelled).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            if self.head != idx {
                self.detach(idx);
                self.attach_front(idx);
            }
            self.nodes[idx as usize].value = Some(value);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            self.evict_lru()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Remove and return the least-recently-used entry.
    pub fn evict_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.detach(idx);
        self.free.push(idx);
        let node = &mut self.nodes[idx as usize];
        self.map.remove(&node.key);
        let value = node.value.take().expect("live node has a value");
        Some((node.key.clone(), value))
    }

    /// Remove a specific key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        self.nodes[idx as usize].value.take()
    }

    /// Key of the current LRU victim candidate, if any.
    pub fn lru_key(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.nodes[self.tail as usize].key)
        }
    }

    /// Iterate entries from most- to least-recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            while cur != NIL {
                let n = &self.nodes[cur as usize];
                cur = n.next;
                if let Some(v) = n.value.as_ref() {
                    return Some((&n.key, v));
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    fn hit_and_miss() {
        let mut l = LruMap::new(2);
        assert!(l.insert(1, "a").is_none());
        assert!(l.insert(2, "b").is_none());
        assert_eq!(l.get(&1), Some(&"a"));
        assert_eq!(l.get(&3), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut l = LruMap::new(2);
        l.insert(1, "a");
        l.insert(2, "b");
        l.get(&1); // 2 is now LRU
        let evicted = l.insert(3, "c").unwrap();
        assert_eq!(evicted, (2, "b"));
        assert!(l.contains(&1) && l.contains(&3));
    }

    #[test]
    fn reinsert_existing_does_not_evict() {
        let mut l = LruMap::new(2);
        l.insert(1, 10);
        l.insert(2, 20);
        assert!(l.insert(1, 11).is_none());
        assert_eq!(l.peek(&1), Some(&11));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn remove_frees_capacity() {
        let mut l = LruMap::new(2);
        l.insert(1, "a");
        l.insert(2, "b");
        assert_eq!(l.remove(&1), Some("a"));
        assert!(l.insert(3, "c").is_none(), "no eviction needed");
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn mru_iteration_order() {
        let mut l = LruMap::new(3);
        l.insert(1, ());
        l.insert(2, ());
        l.insert(3, ());
        l.get(&1);
        let order: Vec<i32> = l.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![1, 3, 2]);
        assert_eq!(l.lru_key(), Some(&2));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut l = LruMap::new(2);
        l.insert(1, ());
        l.insert(2, ());
        l.peek(&1);
        let (k, _) = l.insert(3, ()).unwrap();
        assert_eq!(k, 1, "peek must not refresh recency");
    }

    proptest! {
        /// Behaviour matches a naive VecDeque-based reference model.
        #[test]
        fn prop_matches_reference(ops in proptest::collection::vec((0u8..3, 0u32..12), 1..500)) {
            let cap = 4;
            let mut lru = LruMap::new(cap);
            let mut model: VecDeque<(u32, u32)> = VecDeque::new(); // front = MRU
            for (op, key) in ops {
                match op {
                    0 => {
                        // insert key -> key*10
                        let evicted = lru.insert(key, key * 10);
                        if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                            model.remove(pos);
                            model.push_front((key, key * 10));
                            prop_assert!(evicted.is_none());
                        } else {
                            if model.len() == cap {
                                let victim = model.pop_back().unwrap();
                                prop_assert_eq!(evicted, Some(victim));
                            } else {
                                prop_assert!(evicted.is_none());
                            }
                            model.push_front((key, key * 10));
                        }
                    }
                    1 => {
                        let got = lru.get(&key).copied();
                        if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                            let e = model.remove(pos).unwrap();
                            prop_assert_eq!(got, Some(e.1));
                            model.push_front(e);
                        } else {
                            prop_assert!(got.is_none());
                        }
                    }
                    _ => {
                        let got = lru.remove(&key);
                        if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                            let e = model.remove(pos).unwrap();
                            prop_assert_eq!(got, Some(e.1));
                        } else {
                            prop_assert!(got.is_none());
                        }
                    }
                }
                prop_assert_eq!(lru.len(), model.len());
                let order: Vec<u32> = lru.iter_mru().map(|(k, _)| *k).collect();
                let model_order: Vec<u32> = model.iter().map(|(k, _)| *k).collect();
                prop_assert_eq!(order, model_order);
            }
        }
    }
}
