//! Deterministic random variates for the workload model.
//!
//! A single [`SimRng`] seeds the whole simulation; independent logical
//! streams are derived with [`SimRng::fork`] so that adding a consumer does
//! not perturb the draws of existing ones (a classic simulation-hygiene
//! requirement for comparing strategies on common random numbers).

/// Seedable random source with the distributions used by the simulator.
///
/// The generator is a self-contained xoshiro256++ (the algorithm behind
/// `rand`'s `SmallRng` on 64-bit targets), seeded via SplitMix64 — no
/// external crates, so the simulator's determinism depends only on this
/// file.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

#[inline]
fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SimRng {
    pub fn new(seed: u64) -> Self {
        let mut z = seed;
        let state = [
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
        ];
        SimRng { state, seed }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream identified by `stream`.
    ///
    /// Uses SplitMix64 finalization over `(seed, stream)` so forked streams
    /// are decorrelated from the parent and from each other.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform in `[0, 1)` (53-bit resolution).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (bias-free rejection sampling).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % n;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` (requires `lo < hi`).
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given mean (inter-arrival times of the
    /// open queuing model). A zero or negative mean yields zero.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF with u in (0, 1]; 1-f64() avoids ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Zipf-distributed integer in `[0, n)` with skew parameter `theta`
    /// (`theta = 0` is uniform). Used for skewed data-access extensions.
    ///
    /// Rejection-inversion free implementation via the classic power
    /// approximation (Gray et al., SIGMOD'94 quickstep): adequate for
    /// workload generation, O(1) per draw after O(1) setup parameters.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        debug_assert!(n > 0);
        if n == 1 || theta <= 0.0 {
            return self.below(n);
        }
        // Compute (or approximate) the generalized harmonic number lazily.
        // For simulation-scale n this direct loop is fine because callers
        // cache a `ZipfGen` for hot paths.
        let zeta: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let u = self.f64() * zeta;
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            if acc >= u {
                return i - 1;
            }
        }
        n - 1
    }

    /// Choose `k` distinct indices uniformly from `[0, n)`, in selection
    /// order (partial Fisher-Yates over an index vector).
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Shuffle a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty());
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Cached Zipf generator for hot paths (precomputes the harmonic sums).
#[derive(Debug, Clone)]
pub struct ZipfGen {
    cdf: Vec<f64>,
}

impl ZipfGen {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfGen { cdf }
    }

    pub fn draw(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i as u64,
            Err(i) => (i.min(self.cdf.len() - 1)) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let root = SimRng::new(7);
        let mut s1 = root.fork(1);
        let mut s2 = root.fork(2);
        let equal = (0..32).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn fork_is_stable() {
        let a = SimRng::new(7).fork(3).next_u64();
        let b = SimRng::new(7).fork(3).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(1);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn exp_degenerate_mean() {
        let mut r = SimRng::new(1);
        assert_eq!(r.exp(0.0), 0.0);
        assert_eq!(r.exp(-3.0), 0.0);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut r = SimRng::new(9);
        for _ in 0..100 {
            let s = r.sample_distinct(20, 8);
            assert_eq!(s.len(), 8);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8);
            assert!(s.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn sample_distinct_caps_at_n() {
        let mut r = SimRng::new(9);
        let s = r.sample_distinct(3, 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let mut r = SimRng::new(3);
        let n = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[r.zipf(n, 0.0) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 5000.0).abs() < 450.0, "count {c}");
        }
    }

    #[test]
    fn zipf_skews_to_low_indices() {
        let gen = ZipfGen::new(100, 1.0);
        let mut r = SimRng::new(3);
        let mut first = 0;
        let n = 20_000;
        for _ in 0..n {
            if gen.draw(&mut r) == 0 {
                first += 1;
            }
        }
        // P(0) = 1/H_100 ≈ 0.192
        let p = first as f64 / n as f64;
        assert!((p - 0.192).abs() < 0.02, "P(rank 0) = {p}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
