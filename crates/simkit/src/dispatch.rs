//! Generic event-dispatch kernel.
//!
//! Extracts the heap-driven simulation loop (previously hand-rolled inside
//! `snsim::System`) into a reusable pair:
//!
//! * [`EventQueue`] — the future event list plus the simulation clock and a
//!   processed-event counter. Handlers schedule follow-up events through it
//!   ([`EventQueue::at`] / [`EventQueue::after`]) while the dispatcher owns
//!   the pop-advance-dispatch cycle.
//! * [`Dispatcher`] — the loop itself: pop the earliest event, advance the
//!   clock, route the typed event into the [`Simulation`], then let the
//!   simulation quiesce (drain its internal work queues) before the next
//!   event. Deterministic: identical schedules replay identically.
//!
//! The simulation owns its queue (`queue_mut`) so handlers can borrow the
//! rest of their state freely while scheduling; the dispatcher only ever
//! touches the queue between handler invocations.

use crate::calendar::CalendarQueue;
use crate::heap::EventHeap;
use crate::time::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// Which future-event-list implementation backs an [`EventQueue`].
///
/// Both implement the identical `(time, seq)` total order, so whole-run
/// results are bit-identical regardless of the choice; only the cost
/// profile differs (O(log n) heap ops vs. expected-O(1) calendar ops).
/// `tests/perf_parity.rs` enforces the equivalence on the scenario corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueKind {
    /// Binary heap ([`EventHeap`]): O(log n), branch-predictable, compact.
    #[default]
    BinaryHeap,
    /// Bucketed timing wheel ([`CalendarQueue`]): expected O(1) push/pop
    /// when the live event count tracks the wheel size.
    Calendar,
}

/// The future event list behind an [`EventQueue`].
enum Fel<E> {
    Heap(EventHeap<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Fel<E> {
    #[inline]
    fn push(&mut self, t: SimTime, ev: E) {
        match self {
            Fel::Heap(h) => h.push(t, ev),
            Fel::Calendar(c) => c.push(t, ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Fel::Heap(h) => h.pop(),
            Fel::Calendar(c) => c.pop(),
        }
    }
}

/// Future event list + clock for one simulation.
pub struct EventQueue<E> {
    fel: Fel<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_kind(QueueKind::default(), 0)
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self::with_kind(QueueKind::default(), cap)
    }

    /// Build a queue backed by the chosen implementation. `cap` is a
    /// capacity hint (heap) or an initial wheel-size hint (calendar).
    pub fn with_kind(kind: QueueKind, cap: usize) -> Self {
        let fel = match kind {
            QueueKind::BinaryHeap => Fel::Heap(EventHeap::with_capacity(cap)),
            QueueKind::Calendar => Fel::Calendar(CalendarQueue::with_capacity(cap)),
        };
        EventQueue {
            fel,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Which implementation backs this queue.
    pub fn kind(&self) -> QueueKind {
        match self.fel {
            Fel::Heap(_) => QueueKind::BinaryHeap,
            Fel::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Current simulated time (the timestamp of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` at absolute time `t` (must not lie in the past).
    #[inline]
    pub fn at(&mut self, t: SimTime, ev: E) {
        self.fel.push(t, ev);
    }

    /// Schedule `ev` at `now + delay`.
    #[inline]
    pub fn after(&mut self, delay: SimDur, ev: E) {
        self.fel.push(self.now + delay, ev);
    }

    /// Time of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.fel {
            Fel::Heap(h) => h.peek_time(),
            Fel::Calendar(c) => c.peek_time(),
        }
    }

    /// Pop the next event, advancing the clock and the processed counter.
    pub fn pop_next(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.fel.pop()?;
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// Move the clock forward without an event (end-of-run fast-forward).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "clock must not run backwards");
        self.now = t;
    }

    /// Events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    // ----- windowed-executor API (see `crate::lanes`) ------------------
    //
    // The windowed executor pops a prefix of the event stream up front
    // (window formation), executes it on per-lane state, then re-traverses
    // it in global order (merge commit). These hooks expose the `(time,
    // seq)` key material and bypass the single-pop clock bookkeeping so
    // the commit pass can reproduce *exactly* the pushes and clock motion
    // a sequential run would have performed.

    /// Next pending event without popping it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        match &self.fel {
            Fel::Heap(h) => h.peek(),
            Fel::Calendar(c) => c.peek(),
        }
    }

    /// `(time, seq)` key of the next pending event without popping it.
    /// The commit pass merges the FEL head against lane-log replays and
    /// residual events by this key.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        match &self.fel {
            Fel::Heap(h) => h.peek_key(),
            Fel::Calendar(c) => c.peek_key(),
        }
    }

    /// Pop the next event with its sequence number, advancing neither the
    /// clock, the processed counter, nor the FEL causality watermark.
    pub fn window_pop(&mut self) -> Option<(SimTime, u64, E)> {
        match &mut self.fel {
            Fel::Heap(h) => h.pop_raw(),
            Fel::Calendar(c) => c.pop_raw(),
        }
    }

    /// Reserve the next sequence number (commit-pass push replay).
    pub fn alloc_seq(&mut self) -> u64 {
        match &mut self.fel {
            Fel::Heap(h) => h.alloc_seq(),
            Fel::Calendar(c) => c.alloc_seq(),
        }
    }

    /// Schedule `ev` under a sequence number from [`EventQueue::alloc_seq`].
    pub fn push_with_seq(&mut self, t: SimTime, seq: u64, ev: E) {
        match &mut self.fel {
            Fel::Heap(h) => h.push_with_seq(t, seq, ev),
            Fel::Calendar(c) => c.push_with_seq(t, seq, ev),
        }
    }

    /// Count one event as dispatched (window items are counted as the
    /// commit pass traverses them, or at formation for pre-executed ones).
    #[inline]
    pub fn note_processed(&mut self) {
        self.processed += 1;
    }

    /// Set the clock without the monotonicity check. Windowed executor
    /// only: the commit pass re-traverses an already-executed window, and
    /// deferred per-item effects replay with the clock pinned to each
    /// item's timestamp, which may rewind within the window.
    #[inline]
    pub fn window_set_now(&mut self, t: SimTime) {
        self.now = t;
    }

    pub fn len(&self) -> usize {
        match &self.fel {
            Fel::Heap(h) => h.len(),
            Fel::Calendar(c) => c.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A simulation drivable by the [`Dispatcher`]: an event queue plus a
/// handler for its typed events.
pub trait Simulation {
    type Event;

    /// The simulation's event queue (owned by the simulation so handlers
    /// can schedule while borrowing the rest of their state).
    fn queue_mut(&mut self) -> &mut EventQueue<Self::Event>;

    /// Handle one event at its scheduled time.
    fn handle(&mut self, now: SimTime, ev: Self::Event);

    /// Called after each handled event: drain internal work queues until
    /// quiescent. Default: nothing to drain.
    fn quiesce(&mut self) {}
}

/// The dispatch loop. Stateless: all run state lives in the simulation's
/// [`EventQueue`], so a run can be stopped and resumed at any horizon.
pub struct Dispatcher;

impl Dispatcher {
    /// Run `sim` until its queue is empty or the next event lies beyond
    /// `end`. The clock is left at `end`. Returns the number of events
    /// dispatched by this call.
    pub fn run_until<S: Simulation>(sim: &mut S, end: SimTime) -> u64 {
        let mut dispatched = 0;
        while let Some(t) = sim.queue_mut().peek_time() {
            if t > end {
                break;
            }
            let (t, ev) = sim.queue_mut().pop_next().expect("peeked event");
            sim.handle(t, ev);
            sim.quiesce();
            dispatched += 1;
        }
        sim.queue_mut().advance_to(end);
        dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy simulation: a counter that reschedules itself `ticks` times and
    /// drains a side queue after every event.
    struct Ticker {
        queue: EventQueue<u32>,
        handled: Vec<(u64, u32)>,
        drains: u32,
    }

    impl Simulation for Ticker {
        type Event = u32;

        fn queue_mut(&mut self) -> &mut EventQueue<u32> {
            &mut self.queue
        }

        fn handle(&mut self, now: SimTime, ev: u32) {
            self.handled.push((now.as_nanos(), ev));
            if ev < 3 {
                self.queue.after(SimDur::from_nanos(10), ev + 1);
            }
        }

        fn quiesce(&mut self) {
            self.drains += 1;
        }
    }

    #[test]
    fn drives_events_in_order_and_advances_clock() {
        let mut sim = Ticker {
            queue: EventQueue::new(),
            handled: Vec::new(),
            drains: 0,
        };
        sim.queue.at(SimTime(5), 0);
        let n = Dispatcher::run_until(&mut sim, SimTime(100));
        assert_eq!(n, 4);
        assert_eq!(sim.handled, vec![(5, 0), (15, 1), (25, 2), (35, 3)]);
        assert_eq!(sim.drains, 4, "quiesce runs after every event");
        assert_eq!(sim.queue.now(), SimTime(100), "clock lands on the horizon");
        assert_eq!(sim.queue.processed(), 4);
    }

    #[test]
    fn horizon_leaves_future_events_pending() {
        let mut sim = Ticker {
            queue: EventQueue::new(),
            handled: Vec::new(),
            drains: 0,
        };
        sim.queue.at(SimTime(5), 0);
        sim.queue.at(SimTime(50), 9);
        let n = Dispatcher::run_until(&mut sim, SimTime(40));
        assert_eq!(n, 4, "the tick chain fits; the t=50 event does not");
        assert_eq!(sim.queue.len(), 1);
        // Resume: the leftover event runs on the next call.
        let n2 = Dispatcher::run_until(&mut sim, SimTime(60));
        assert_eq!(n2, 1);
        assert_eq!(sim.handled.last(), Some(&(50, 9)));
    }

    #[test]
    fn calendar_backed_queue_replays_identically() {
        let run = |kind: QueueKind| {
            let mut sim = Ticker {
                queue: EventQueue::with_kind(kind, 8),
                handled: Vec::new(),
                drains: 0,
            };
            sim.queue.at(SimTime(5), 0);
            sim.queue.at(SimTime(5), 7);
            sim.queue.at(SimTime(90), 9);
            let n = Dispatcher::run_until(&mut sim, SimTime(100));
            (n, sim.handled, sim.queue.processed())
        };
        assert_eq!(run(QueueKind::BinaryHeap), run(QueueKind::Calendar));
    }

    #[test]
    fn relative_scheduling_tracks_clock() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.at(SimTime(7), 1);
        assert_eq!(q.pop_next(), Some((SimTime(7), 1)));
        q.after(SimDur::from_nanos(3), 2);
        assert_eq!(q.peek_time(), Some(SimTime(10)));
    }
}
