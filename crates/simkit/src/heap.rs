//! The future event list.
//!
//! A thin wrapper over `BinaryHeap` that orders events by `(time, seq)`,
//! where `seq` is a monotonically increasing sequence number assigned at
//! scheduling time. The sequence number guarantees **deterministic FIFO
//! tie-breaking** for events scheduled at the same instant, which is what
//! makes whole-simulation runs reproducible across platforms.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-ordered future event list with deterministic tie-breaking.
pub struct EventHeap<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventHeap<T> {
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventHeap {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` lies before the time of the most recently popped
    /// event: scheduling into the past would silently corrupt causality.
    pub fn push(&mut self, time: SimTime, payload: T) {
        assert!(
            time >= self.last_popped,
            "event scheduled in the past: {} < {}",
            time,
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Pop the earliest event, advancing the internal causality watermark.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.last_popped);
        self.last_popped = e.time;
        Some((e.time, e.payload))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Time and payload of the next event without popping it.
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        self.heap.peek().map(|e| (e.time, &e.payload))
    }

    /// `(time, seq)` key of the next event without popping it.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Pop the earliest event **without** advancing the causality
    /// watermark, exposing its sequence number. Used by the windowed
    /// executor, which re-traverses the popped prefix and must still be
    /// able to push follow-ups timestamped inside it.
    pub fn pop_raw(&mut self) -> Option<(SimTime, u64, T)> {
        let e = self.heap.pop()?;
        Some((e.time, e.seq, e.payload))
    }

    /// Reserve the next sequence number (the windowed executor replays
    /// the sequential push order, so every push — even one whose event
    /// was already consumed inside the window — must consume a number).
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedule `payload` under a sequence number obtained from
    /// [`EventHeap::alloc_seq`] (windowed executor only: the caller is
    /// reproducing the exact `(time, seq)` order a sequential run would
    /// have assigned).
    pub fn push_with_seq(&mut self, time: SimTime, seq: u64, payload: T) {
        debug_assert!(seq < self.next_seq, "seq must come from alloc_seq");
        assert!(
            time >= self.last_popped,
            "event scheduled in the past: {} < {}",
            time,
            self.last_popped
        );
        self.heap.push(Entry { time, seq, payload });
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (the next sequence number).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(SimTime(30), "c");
        h.push(SimTime(10), "a");
        h.push(SimTime(20), "b");
        assert_eq!(h.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(h.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(h.pop().unwrap(), (SimTime(30), "c"));
        assert!(h.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut h = EventHeap::new();
        let t = SimTime(5);
        for i in 0..100 {
            h.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(h.pop().unwrap().1, i);
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut h = EventHeap::new();
        h.push(SimTime(10), ());
        h.pop();
        h.push(SimTime(9), ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = EventHeap::new();
        h.push(SimTime::ZERO + SimDur::from_millis(3), 1u8);
        h.push(SimTime::ZERO + SimDur::from_millis(1), 2u8);
        assert_eq!(h.peek_time(), Some(SimTime(1_000_000)));
        assert_eq!(h.pop().unwrap().0, SimTime(1_000_000));
    }

    #[test]
    fn counters() {
        let mut h = EventHeap::new();
        assert!(h.is_empty());
        h.push(SimTime(1), ());
        h.push(SimTime(2), ());
        assert_eq!(h.len(), 2);
        assert_eq!(h.scheduled_total(), 2);
        h.pop();
        assert_eq!(h.len(), 1);
        assert_eq!(h.scheduled_total(), 2);
    }

    proptest! {
        /// Popping must yield a non-decreasing time sequence, and same-time
        /// events must come out in insertion order.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut h = EventHeap::new();
            for (i, t) in times.iter().enumerate() {
                h.push(SimTime(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = h.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated on tie");
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
