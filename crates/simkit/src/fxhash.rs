//! A fast, deterministic hasher for hot-path hash maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds
//! per lookup; the simulator's page-buffer and lock-table maps are probed
//! a dozen times per transaction, which makes the hasher itself visible
//! in the event loop at thousand-PE scale. This is the Fx multiply-rotate
//! hash (as popularized by rustc): ~5× faster on the small fixed-width
//! keys used here (page addresses, lock object ids).
//!
//! Determinism note: simulation results must never depend on hash-map
//! iteration order — `std`'s per-process random seed already guarantees
//! that any such dependence would show up as run-to-run nondeterminism.
//! Switching to a fixed-seed hasher therefore cannot change observable
//! behaviour, only speed (the parity suite in `tests/perf_parity.rs`
//! holds the byte-identical-summary invariant either way).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over 64-bit words (the Fx algorithm).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, fixed seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(0xDEAD_BEEFu64), hash_of(0xDEAD_BEEFu64));
        assert_ne!(hash_of(1u64), hash_of(2u64));
    }

    #[test]
    fn tail_bytes_change_the_hash() {
        assert_ne!(hash_of("abc"), hash_of("abd"));
        assert_ne!(hash_of((1u32, 2u8)), hash_of((1u32, 3u8)));
    }

    #[test]
    fn map_behaves_normally() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 7) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&6993));
        assert_eq!(m.remove(&0), Some(0));
    }
}
