//! Online statistics for simulation output analysis.
//!
//! * [`OnlineStats`] — Welford mean/variance plus min/max, O(1) memory;
//! * [`TimeWeighted`] — integral of a piecewise-constant signal over time
//!   (queue lengths, memory in use, multiprogramming level);
//! * [`Histogram`] — log-scaled latency histogram with quantile estimation;
//! * [`BatchMeans`] — the batch-means method for confidence intervals on
//!   steady-state means from a single long run;
//! * [`Counter`] — a named monotonic counter.

use serde::{Deserialize, Serialize};

use crate::time::{SimDur, SimTime};

/// Welford online mean/variance with min/max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    integral: f64,
    last: SimTime,
    start: SimTime,
}

impl TimeWeighted {
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            integral: 0.0,
            last: start,
            start,
        }
    }

    /// Record that the signal changed to `value` at `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last).as_secs_f64();
        self.integral += self.value * dt;
        self.value = value;
        self.last = now;
    }

    /// Add `delta` to the current value at `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-average over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.since(self.start).as_secs_f64();
        if span <= 0.0 {
            return self.value;
        }
        let tail = now.since(self.last).as_secs_f64();
        (self.integral + self.value * tail) / span
    }

    /// Reset the measurement origin (e.g. at end of warm-up) while keeping
    /// the current signal value.
    pub fn reset(&mut self, now: SimTime) {
        self.integral = 0.0;
        self.last = now;
        self.start = now;
    }
}

/// Log2-bucketed histogram of durations, 1us floor, with quantiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// buckets[i] counts samples in [2^i, 2^(i+1)) microseconds.
    buckets: Vec<u64>,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 48],
            count: 0,
        }
    }

    pub fn record(&mut self, d: SimDur) {
        let us = (d.as_nanos() / 1_000).max(1);
        let b = (63 - us.leading_zeros()) as usize;
        let b = b.min(self.buckets.len() - 1);
        self.buckets[b] += 1;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (bucket upper bound), q in \[0,1\].
    pub fn quantile(&self, q: f64) -> SimDur {
        if self.count == 0 {
            return SimDur::ZERO;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return SimDur::from_micros(1u64 << (i + 1));
            }
        }
        SimDur::from_micros(1u64 << self.buckets.len())
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }
}

/// Batch-means confidence interval for a steady-state mean.
///
/// Observations are grouped into `batches` equal batches; the half-width is
/// `t * s / sqrt(b)` with a Student-t critical value for 95% confidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: usize,
    current_sum: f64,
    current_n: usize,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0);
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batch_means: Vec::new(),
        }
    }

    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batch_means
                .push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    pub fn completed_batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches.
    pub fn mean(&self) -> f64 {
        if self.batch_means.is_empty() {
            return 0.0;
        }
        self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64
    }

    /// 95% confidence half-width; `None` with fewer than 2 batches.
    pub fn half_width_95(&self) -> Option<f64> {
        let b = self.batch_means.len();
        if b < 2 {
            return None;
        }
        let mean = self.mean();
        let var = self
            .batch_means
            .iter()
            .map(|m| (m - mean) * (m - mean))
            .sum::<f64>()
            / (b - 1) as f64;
        Some(t_crit_95(b - 1) * (var / b as f64).sqrt())
    }
}

/// Student-t 0.975 critical values (two-sided 95%) for small df, asymptote
/// 1.96 beyond 30 degrees of freedom.
fn t_crit_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Named monotonic counter.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138).abs() < 1e-3);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.record(x));
        xs[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime(1_000_000_000), 10.0); // 0 for 1s
        tw.set(SimTime(3_000_000_000), 0.0); // 10 for 2s
        let avg = tw.average(SimTime(4_000_000_000)); // 0 for 1s
        assert!((avg - 5.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn time_weighted_reset() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 4.0);
        tw.reset(SimTime(2_000_000_000));
        let avg = tw.average(SimTime(3_000_000_000));
        assert!((avg - 4.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new();
        for ms in 1..=1000u64 {
            h.record(SimDur::from_millis(ms));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p50 >= SimDur::from_millis(256) && p50 <= SimDur::from_millis(1024));
    }

    #[test]
    fn batch_means_ci() {
        let mut bm = BatchMeans::new(10);
        let mut rng = crate::SimRng::new(11);
        for _ in 0..1000 {
            bm.record(rng.exp(2.0));
        }
        assert_eq!(bm.completed_batches(), 100);
        let hw = bm.half_width_95().unwrap();
        assert!(
            (bm.mean() - 2.0).abs() < 3.0 * hw,
            "CI should cover the mean"
        );
        assert!(hw < 0.5);
    }

    #[test]
    fn batch_means_needs_two_batches() {
        let mut bm = BatchMeans::new(5);
        for i in 0..5 {
            bm.record(i as f64);
        }
        assert!(bm.half_width_95().is_none());
    }

    proptest! {
        #[test]
        fn prop_merge_matches_sequential(xs in proptest::collection::vec(-1e6f64..1e6, 0..300), split in 0usize..300) {
            let split = split.min(xs.len());
            let mut whole = OnlineStats::new();
            xs.iter().for_each(|&x| whole.record(x));
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            xs[..split].iter().for_each(|&x| a.record(x));
            xs[split..].iter().for_each(|&x| b.record(x));
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            if whole.count() > 0 {
                prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
            }
        }

        #[test]
        fn prop_histogram_count(ds in proptest::collection::vec(1u64..10_000_000, 0..200)) {
            let mut h = Histogram::new();
            for d in &ds {
                h.record(SimDur::from_nanos(*d));
            }
            prop_assert_eq!(h.count(), ds.len() as u64);
        }
    }
}
