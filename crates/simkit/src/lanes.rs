//! Deterministic lane-parallel window execution.
//!
//! A **window** is a prefix of the future event list whose events are all
//! *lane-local*: each touches the state of exactly one lane (one PE, in
//! the simulator built on top) and schedules follow-ups only for its own
//! lane. Such a prefix can be executed lane-by-lane on worker threads and
//! still reproduce the sequential run **bit-identically**, because the
//! `(time, seq)` total order over the window is known up front and every
//! observable side effect can be replayed in that order afterwards.
//!
//! The protocol has three phases, driven by the simulation's own run loop
//! (the kernel cannot know which events are lane-local):
//!
//! 1. **Formation** (serial). Pop window-compatible events with
//!    [`EventQueue::window_pop`] — which advances neither the clock nor
//!    the causality watermark — partitioning them into per-lane item
//!    lists. Stop at the first *barrier* (an event with cross-lane
//!    effects). The FEL head after formation is the window **horizon**.
//! 2. **Lane execution** (parallel). Each lane handles its items in
//!    `(time, seq)` order against lane-private state, recording every
//!    event push into its [`LaneLog`]. A push timestamped before the
//!    horizon is *consumed* — handled inside the same window by the same
//!    lane (it cannot commute past the horizon event otherwise) — and
//!    becomes a window item itself, keyed by a lane-local rank. A push at
//!    or past the horizon is *deferred* verbatim.
//! 3. **Merge commit** (serial). [`merge_commit`] re-traverses the window
//!    in global `(time, seq)` order and replays each item's pushes
//!    against the real FEL, allocating sequence numbers as it goes. This
//!    reproduces the exact allocation order of a sequential run — in
//!    particular, a *consumed* push still burns its sequence number, so
//!    every event left in (or later pushed into) the FEL carries the same
//!    `(time, seq)` key it would have sequentially, and all future pops
//!    are bit-identical. Items flagged as carrying effects are returned
//!    in commit order so the simulation can replay cross-lane side
//!    effects (job retirement, global counters) serially.
//!
//! Why consumed pushes must burn sequence numbers: two same-time events in
//! different lanes tie-break on `seq`. If lane A's consumed push skipped
//! its number, every later allocation would shift by one relative to the
//! sequential run, flipping tie orders arbitrarily far in the future.

use crate::dispatch::EventQueue;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How one window item is keyed in the global `(time, seq)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKey {
    /// An event popped from the FEL at formation: its original sequence
    /// number, assigned before the window started.
    Orig(u64),
    /// A push consumed inside the window: a lane-local rank, resolved to
    /// a real sequence number when the producing push is replayed.
    Gen(u32),
}

/// One handled item: its timestamp, key, push range, and whether the
/// simulation recorded a deferred cross-lane effect for it.
struct ItemHdr {
    time: SimTime,
    key: ItemKey,
    push_start: u32,
    push_end: u32,
    effect: bool,
}

enum PushRec<E> {
    /// Replay verbatim at commit (timestamp ≥ horizon, or barrier-bound).
    Defer(SimTime, E),
    /// Consumed in-window by rank; commit only burns its seq number.
    Consumed(u32),
}

/// Per-lane record of one window's execution: the items handled, in lane
/// order, and every event push each produced.
///
/// Allocation-free in steady state: `clear` keeps the backing buffers.
pub struct LaneLog<E> {
    items: Vec<ItemHdr>,
    pushes: Vec<PushRec<E>>,
    /// Rank → committed sequence number, filled during merge.
    gen_seq: Vec<u64>,
}

const SEQ_UNASSIGNED: u64 = u64::MAX;

impl<E> Default for LaneLog<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LaneLog<E> {
    pub fn new() -> Self {
        LaneLog {
            items: Vec::new(),
            pushes: Vec::new(),
            gen_seq: Vec::new(),
        }
    }

    /// Forget the previous window, keeping capacity.
    pub fn clear(&mut self) {
        self.items.clear();
        self.pushes.clear();
        self.gen_seq.clear();
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of items handled this window.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Open the record for the next handled item. Items must be begun in
    /// the lane's `(time, seq)` handling order.
    pub fn begin_item(&mut self, time: SimTime, key: ItemKey) {
        let at = self.pushes.len() as u32;
        self.items.push(ItemHdr {
            time,
            key,
            push_start: at,
            push_end: at,
            effect: false,
        });
    }

    /// Record a push the lane defers to commit.
    pub fn push_defer(&mut self, t: SimTime, ev: E) {
        self.pushes.push(PushRec::Defer(t, ev));
        self.items.last_mut().expect("begin_item first").push_end += 1;
    }

    /// Record a push the lane consumes in-window; returns the rank the
    /// lane must use as the consumed event's [`ItemKey::Gen`]. The
    /// timestamp is the lane's business (it keys the consumed item in the
    /// lane's local frontier); commit only burns the sequence number.
    pub fn push_consumed(&mut self, _t: SimTime) -> u32 {
        let rank = self.gen_seq.len() as u32;
        self.gen_seq.push(SEQ_UNASSIGNED);
        self.pushes.push(PushRec::Consumed(rank));
        self.items.last_mut().expect("begin_item first").push_end += 1;
        rank
    }

    /// Flag the current item as carrying a deferred cross-lane effect;
    /// [`merge_commit`] reports it in commit order.
    pub fn mark_effect(&mut self) {
        self.items.last_mut().expect("begin_item first").effect = true;
    }

    /// The committed `(time, seq)` key of item `idx` (seq resolved for
    /// consumed items; panics if its producer has not been replayed).
    fn committed_key(&self, idx: usize) -> (SimTime, u64) {
        let hdr = &self.items[idx];
        let seq = match hdr.key {
            ItemKey::Orig(s) => s,
            ItemKey::Gen(rank) => {
                let s = self.gen_seq[rank as usize];
                debug_assert!(
                    s != SEQ_UNASSIGNED,
                    "consumed item merged before its producing push"
                );
                s
            }
        };
        (hdr.time, seq)
    }
}

/// One lane item replayed by [`MergeCursor::replay_next`]: where it lived
/// (`lane`, `idx`), its committed timestamp, and whether the lane flagged
/// a deferred cross-lane effect for it.
#[derive(Debug, Clone, Copy)]
pub struct MergeStep {
    pub lane: u32,
    pub idx: u32,
    pub time: SimTime,
    pub effect: bool,
}

/// Incremental merge over one window's lane logs in global `(time, seq)`
/// order.
///
/// [`merge_commit`] drives it to exhaustion for the simple case where the
/// whole window replays back-to-back. Simulations that must *interleave*
/// the replay with other event streams (residual events handled serially,
/// fresh FEL pushes landing below the horizon) instead step it manually:
/// [`MergeCursor::peek_key`] exposes the next item's committed key so the
/// caller can pick the global minimum across streams, and
/// [`MergeCursor::replay_next`] commits exactly one item.
///
/// Reusable across windows ([`MergeCursor::begin`] keeps the backing
/// buffers), so steady-state commits allocate nothing.
pub struct MergeCursor {
    /// (key, lane) min-heap over each active lane's next unmerged item.
    /// Sequence numbers are globally unique, so keys never tie.
    heads: BinaryHeap<Reverse<((SimTime, u64), u32)>>,
    cursors: Vec<usize>,
}

impl Default for MergeCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl MergeCursor {
    pub fn new() -> MergeCursor {
        MergeCursor {
            heads: BinaryHeap::new(),
            cursors: Vec::new(),
        }
    }

    /// Start merging a freshly executed window. Only lanes listed in
    /// `active` are visited.
    pub fn begin<E>(&mut self, lanes: &[LaneLog<E>], active: &[u32]) {
        self.heads.clear();
        self.cursors.clear();
        self.cursors.resize(lanes.len(), 0);
        for &lane in active {
            let log = &lanes[lane as usize];
            if !log.is_empty() {
                // A lane's first item is always an original (consumed
                // pushes are produced by earlier items of the same lane),
                // so its key is resolvable up front.
                self.heads.push(Reverse((log.committed_key(0), lane)));
            }
        }
    }

    /// Committed `(time, seq)` key of the next unmerged item, if any.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heads.peek().map(|Reverse((key, _))| *key)
    }

    /// Replay the next item in `(time, seq)` order: set the clock to its
    /// timestamp, count it as processed, and replay its pushes against
    /// `q` (allocating real sequence numbers in exactly the order a
    /// sequential run would have).
    pub fn replay_next<E>(
        &mut self,
        q: &mut EventQueue<E>,
        lanes: &mut [LaneLog<E>],
    ) -> Option<MergeStep> {
        let Reverse(((t, _seq), lane)) = self.heads.pop()?;
        let idx = self.cursors[lane as usize];
        self.cursors[lane as usize] += 1;
        q.window_set_now(t);
        q.note_processed();
        let log = &mut lanes[lane as usize];
        let (start, end, effect) = {
            let hdr = &log.items[idx];
            (hdr.push_start as usize, hdr.push_end as usize, hdr.effect)
        };
        for p in start..end {
            let seq = q.alloc_seq();
            match &mut log.pushes[p] {
                PushRec::Defer(tp, _) => {
                    let tp = *tp;
                    let PushRec::Defer(_, ev) =
                        std::mem::replace(&mut log.pushes[p], PushRec::Consumed(u32::MAX))
                    else {
                        unreachable!()
                    };
                    q.push_with_seq(tp, seq, ev);
                }
                PushRec::Consumed(rank) => {
                    log.gen_seq[*rank as usize] = seq;
                }
            }
        }
        let next = self.cursors[lane as usize];
        if next < log.item_count() {
            self.heads.push(Reverse((log.committed_key(next), lane)));
        }
        Some(MergeStep {
            lane,
            idx: idx as u32,
            time: t,
            effect,
        })
    }
}

/// Re-traverse one window in global `(time, seq)` order, replaying every
/// recorded push against `q` (allocating real sequence numbers in exactly
/// the order a sequential run would have) and counting each item as
/// processed. The clock is left at the last item's timestamp.
///
/// Items flagged with [`LaneLog::mark_effect`] are appended to
/// `effects_out` as `(time, lane, item_idx)` in commit order; the caller
/// replays their simulation-level effects afterwards (they must not touch
/// the FEL).
pub fn merge_commit<E>(
    q: &mut EventQueue<E>,
    lanes: &mut [LaneLog<E>],
    active: &[u32],
    effects_out: &mut Vec<(SimTime, u32, u32)>,
) {
    let mut cursor = MergeCursor::new();
    cursor.begin(lanes, active);
    while let Some(step) = cursor.replay_next(q, lanes) {
        if step.effect {
            effects_out.push((step.time, step.lane, step.idx));
        }
    }
}

#[cfg(test)]
mod tests {
    //! A toy lane-closed simulation, run both sequentially (via the plain
    //! dispatch loop) and through the full window protocol at several
    //! window sizes and thread counts. The handled-event trace, processed
    //! counter, and residual FEL must match bit-for-bit.

    use super::*;
    use crate::dispatch::QueueKind;
    use crate::time::SimDur;

    /// Toy event: `(lane, hop)`. Handling `(lane, hop)` pushes
    /// `(lane, hop+1)` after a lane/hop-dependent delay (sometimes zero —
    /// a same-time tie — and sometimes large, crossing any horizon) until
    /// `hop == MAX_HOP`. All pushes stay in the source lane.
    type Ev = (u32, u32);
    const MAX_HOP: u32 = 5;

    fn delay(lane: u32, hop: u32) -> SimDur {
        SimDur::from_nanos(match (lane + hop) % 4 {
            0 => 0, // same-time follow-up: exercises seq tie-breaking
            1 => 3,
            2 => 17,
            _ => 1000, // likely beyond the horizon: exercises deferral
        })
    }

    fn seed_queue(kind: QueueKind, lanes: u32) -> EventQueue<Ev> {
        let mut q = EventQueue::with_kind(kind, 16);
        for lane in 0..lanes {
            q.at(SimTime(5 + (lane as u64 * 7) % 13), (lane, 0));
            q.at(SimTime(5 + (lane as u64 * 3) % 11), (lane, 100));
        }
        q
    }

    /// (processed trace, processed count, FEL residue) of a run — the
    /// full observable state the parity assertions compare.
    type RunResult = (Vec<(u64, Ev)>, u64, Vec<(u64, u64, Ev)>);

    fn handle(t: SimTime, ev: Ev, q_push: &mut impl FnMut(SimTime, Ev)) {
        let (lane, hop) = ev;
        if hop % 100 < MAX_HOP {
            q_push(t + delay(lane, hop), (lane, hop + 1));
        }
    }

    /// Reference: the plain sequential loop.
    fn run_sequential(kind: QueueKind, lanes: u32) -> RunResult {
        let mut q = seed_queue(kind, lanes);
        let mut trace = Vec::new();
        let end = SimTime(60);
        while let Some(t) = q.peek_time() {
            if t > end {
                break;
            }
            let (t, ev) = q.pop_next().unwrap();
            trace.push((t.as_nanos(), ev));
            handle(t, ev, &mut |tp, e| q.at(tp, e));
        }
        let processed = q.processed();
        let mut residue = Vec::new();
        while let Some((t, seq, ev)) = q.window_pop() {
            residue.push((t.as_nanos(), seq, ev));
        }
        (trace, processed, residue)
    }

    /// One lane's window execution: merge original items with consumed
    /// follow-ups (originals win same-time ties — their seqs predate the
    /// window) and log every push.
    fn run_lane(
        items: &[(SimTime, u64, Ev)],
        horizon: SimTime,
        log: &mut LaneLog<Ev>,
        handled: &mut Vec<(u64, Ev)>,
    ) {
        let mut gen: BinaryHeap<Reverse<(SimTime, u32)>> = BinaryHeap::new();
        let mut gen_ev: Vec<Option<Ev>> = Vec::new();
        let mut cursor = 0;
        loop {
            let take_orig = match (items.get(cursor), gen.peek()) {
                (Some((to, _, _)), Some(Reverse((tg, _)))) => to <= tg,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (t, key, ev) = if take_orig {
                let (t, seq, ev) = items[cursor];
                cursor += 1;
                (t, ItemKey::Orig(seq), ev)
            } else {
                let Reverse((t, rank)) = gen.pop().unwrap();
                (t, ItemKey::Gen(rank), gen_ev[rank as usize].take().unwrap())
            };
            log.begin_item(t, key);
            handled.push((t.as_nanos(), ev));
            handle(t, ev, &mut |tp, e| {
                if tp < horizon {
                    let rank = log.push_consumed(tp);
                    debug_assert_eq!(rank as usize, gen_ev.len());
                    gen_ev.push(Some(e));
                    gen.push(Reverse((tp, rank)));
                } else {
                    log.push_defer(tp, e);
                }
            });
            log.mark_effect(); // trace ordering is checked via effects
        }
    }

    /// The windowed run: form fixed-size windows, execute lanes (on
    /// `threads` scoped threads when > 1), merge, repeat.
    fn run_windowed(kind: QueueKind, lanes: u32, window_cap: usize, threads: usize) -> RunResult {
        let mut q = seed_queue(kind, lanes);
        let end = SimTime(60);
        let mut logs: Vec<LaneLog<Ev>> = (0..lanes).map(|_| LaneLog::new()).collect();
        let mut trace: Vec<(u64, Ev)> = Vec::new();
        let mut effects: Vec<(SimTime, u32, u32)> = Vec::new();
        loop {
            // --- formation ---
            let mut items: Vec<Vec<(SimTime, u64, Ev)>> = (0..lanes).map(|_| Vec::new()).collect();
            let mut active: Vec<u32> = Vec::new();
            let mut n = 0;
            while n < window_cap {
                match q.peek() {
                    Some((t, _)) if t <= end => {}
                    _ => break,
                }
                let (t, seq, ev) = q.window_pop().unwrap();
                let lane = ev.0;
                if items[lane as usize].is_empty() {
                    active.push(lane);
                }
                items[lane as usize].push((t, seq, ev));
                n += 1;
            }
            if n == 0 {
                break;
            }
            let horizon = q.peek_time().map_or(end, |t| t.min(end));
            // --- lane execution ---
            let mut handled: Vec<Vec<(u64, Ev)>> = (0..lanes).map(|_| Vec::new()).collect();
            for log in &mut logs {
                log.clear();
            }
            if threads > 1 {
                let chunk = items.len().div_ceil(threads);
                std::thread::scope(|s| {
                    for ((items_c, logs_c), handled_c) in items
                        .chunks(chunk)
                        .zip(logs.chunks_mut(chunk))
                        .zip(handled.chunks_mut(chunk))
                    {
                        s.spawn(move || {
                            for ((it, log), h) in items_c
                                .iter()
                                .zip(logs_c.iter_mut())
                                .zip(handled_c.iter_mut())
                            {
                                run_lane(it, horizon, log, h);
                            }
                        });
                    }
                });
            } else {
                for ((it, log), h) in items.iter().zip(logs.iter_mut()).zip(handled.iter_mut()) {
                    run_lane(it, horizon, log, h);
                }
            }
            // --- merge commit ---
            effects.clear();
            merge_commit(&mut q, &mut logs, &active, &mut effects);
            for &(_, lane, idx) in &effects {
                trace.push(handled[lane as usize][idx as usize]);
            }
        }
        let processed = q.processed();
        let mut residue = Vec::new();
        while let Some((t, seq, ev)) = q.window_pop() {
            residue.push((t.as_nanos(), seq, ev));
        }
        (trace, processed, residue)
    }

    #[test]
    fn windowed_matches_sequential_bit_for_bit() {
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            for lanes in [1u32, 3, 8] {
                let reference = run_sequential(kind, lanes);
                for window_cap in [1usize, 2, 7, 64] {
                    for threads in [1usize, 2, 8] {
                        let got = run_windowed(kind, lanes, window_cap, threads);
                        assert_eq!(
                            got, reference,
                            "kind={kind:?} lanes={lanes} cap={window_cap} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn consumed_pushes_burn_sequence_numbers() {
        // After a window in which pushes were consumed, a fresh push must
        // receive the same seq it would have sequentially — i.e. the
        // committed FEL's scheduled_total matches the sequential run's.
        let seq_run = run_sequential(QueueKind::BinaryHeap, 4);
        let win_run = run_windowed(QueueKind::BinaryHeap, 4, 8, 2);
        // Residues carry raw seqs; equality already proves allocation
        // parity, but make the property explicit:
        let seq_ids: Vec<u64> = seq_run.2.iter().map(|r| r.1).collect();
        let win_ids: Vec<u64> = win_run.2.iter().map(|r| r.1).collect();
        assert_eq!(seq_ids, win_ids);
        assert!(!seq_ids.is_empty(), "test must exercise deferred pushes");
    }
}
