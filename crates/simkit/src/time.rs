//! Simulated time.
//!
//! The clock is a monotonically non-decreasing [`SimTime`] with nanosecond
//! resolution stored in a `u64` (enough for ~584 simulated years). Durations
//! are a separate type, [`SimDur`], so that `time + time` does not compile.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDur(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is
    /// in the future (which indicates a logic bug upstream, but reporting
    /// code should not panic).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    pub const ZERO: SimDur = SimDur(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDur {
        SimDur(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDur {
        SimDur(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDur {
        SimDur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDur {
        SimDur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDur {
        if !s.is_finite() || s <= 0.0 {
            return SimDur(0);
        }
        SimDur((s * 1e9).round() as u64)
    }

    /// Construct from fractional milliseconds (convenient for the paper's
    /// parameter table, which is expressed in ms).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> SimDur {
        SimDur::from_secs_f64(ms / 1e3)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDur::from_millis(15).as_nanos(), 15_000_000);
        assert_eq!(SimDur::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDur::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDur::from_millis_f64(0.4).as_nanos(), 400_000);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDur::from_secs_f64(-1.0), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::NAN), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::INFINITY), SimDur::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDur::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + SimDur::from_millis(10);
        assert_eq!((t2 - t).as_millis_f64(), 10.0);
        assert_eq!(t.since(t2), SimDur::ZERO, "since saturates");
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDur::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDur::from_secs(12)), "12.000s");
    }

    #[test]
    fn dur_scaling() {
        assert_eq!((SimDur::from_millis(4) / 4).as_nanos(), 1_000_000);
        assert_eq!((SimDur::from_millis(4) * 3).as_millis_f64(), 12.0);
    }
}
