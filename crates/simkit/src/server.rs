//! Queueing resources.
//!
//! A [`FcfsServer`] models a service station with `units` identical servers
//! (CPUs of a PE, disks, a NIC): requests are served in FCFS order within
//! their priority class, with an optional **high** class that always
//! overtakes the normal class (the paper's local scheduling extension giving
//! OLTP transactions priority over complex queries — §1, [2, 8]).
//!
//! The server performs no event scheduling itself: callers `offer` a request
//! and, if it is granted immediately, schedule the returned completion time
//! into their [`EventHeap`](crate::EventHeap). When a completion fires the
//! caller invokes [`FcfsServer::complete`], which may hand back the next
//! request to schedule. This keeps the resource model decoupled from the
//! event loop and unit-testable in isolation.
//!
//! Busy time is accumulated as an integral of `busy_units × dt`, from which
//! both cumulative and windowed utilization can be derived — the windowed
//! form is what PEs periodically report to the load-balancing control node.

use crate::time::{SimDur, SimTime};
use std::collections::VecDeque;

/// Scheduling class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served only when no high-priority request waits.
    #[default]
    Normal,
    /// Overtakes all queued normal requests (still non-preemptive).
    High,
}

#[derive(Debug)]
struct Pending<T> {
    service: SimDur,
    tag: T,
}

/// A grant: the caller must schedule a completion event at `done` and route
/// it back to [`FcfsServer::complete`] carrying `tag`.
#[derive(Debug, PartialEq, Eq)]
pub struct Grant<T> {
    pub done: SimTime,
    pub tag: T,
}

/// Multi-unit FCFS service station with two priority levels and busy-time
/// accounting.
#[derive(Debug)]
pub struct FcfsServer<T> {
    units: u32,
    busy: u32,
    queue_high: VecDeque<Pending<T>>,
    queue_normal: VecDeque<Pending<T>>,
    /// Integral of busy_units over time, in unit-nanoseconds.
    busy_integral: u128,
    last_change: SimTime,
    /// Total requests ever granted service.
    served: u64,
    /// Integral of queue length over time (for mean queue length).
    queue_integral: u128,
}

impl<T> FcfsServer<T> {
    /// Create a station with `units` parallel servers (≥ 1).
    pub fn new(units: u32) -> Self {
        assert!(units >= 1, "a server needs at least one unit");
        FcfsServer {
            units,
            busy: 0,
            queue_high: VecDeque::new(),
            queue_normal: VecDeque::new(),
            busy_integral: 0,
            last_change: SimTime::ZERO,
            served: 0,
            queue_integral: 0,
        }
    }

    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_change, "server time went backwards");
        let dt = (now - self.last_change).as_nanos() as u128;
        self.busy_integral += dt * self.busy as u128;
        self.queue_integral += dt * (self.queue_high.len() + self.queue_normal.len()) as u128;
        self.last_change = now;
    }

    /// Offer a request needing `service` time. Returns a [`Grant`] if a unit
    /// is free (the caller schedules the completion); otherwise the request
    /// is queued and `None` is returned.
    pub fn offer(
        &mut self,
        now: SimTime,
        service: SimDur,
        prio: Priority,
        tag: T,
    ) -> Option<Grant<T>> {
        self.advance(now);
        if self.busy < self.units {
            self.busy += 1;
            self.served += 1;
            Some(Grant {
                done: now + service,
                tag,
            })
        } else {
            let p = Pending { service, tag };
            match prio {
                Priority::High => self.queue_high.push_back(p),
                Priority::Normal => self.queue_normal.push_back(p),
            }
            None
        }
    }

    /// Mark one in-service request finished. If another request waits, it is
    /// granted and returned so the caller can schedule its completion.
    pub fn complete(&mut self, now: SimTime) -> Option<Grant<T>> {
        self.advance(now);
        debug_assert!(self.busy > 0, "complete() without an in-flight request");
        self.busy -= 1;
        let next = self
            .queue_high
            .pop_front()
            .or_else(|| self.queue_normal.pop_front())?;
        self.busy += 1;
        self.served += 1;
        Some(Grant {
            done: now + next.service,
            tag: next.tag,
        })
    }

    /// Number of configured units.
    pub fn units(&self) -> u32 {
        self.units
    }

    /// Requests currently being served.
    pub fn in_service(&self) -> u32 {
        self.busy
    }

    /// Requests waiting in either queue.
    pub fn queued(&self) -> usize {
        self.queue_high.len() + self.queue_normal.len()
    }

    /// Tags of all queued (not yet granted) requests, high class first.
    /// Read-only inspection for callers that must know what a future
    /// `complete` could hand out — e.g. the windowed executor's formation
    /// pass, which may not let a lane grant cross-lane work.
    pub fn queued_tags(&self) -> impl Iterator<Item = &T> {
        self.queue_high
            .iter()
            .chain(self.queue_normal.iter())
            .map(|p| &p.tag)
    }

    /// Total requests granted service so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Busy integral (unit-nanoseconds) up to `now`. Differencing two
    /// snapshots and dividing by `units × Δt` yields windowed utilization.
    ///
    /// Read-only: the integral is *projected* to `now` (accumulated value
    /// plus `busy × (now − last_change)`) without mutating the server, so
    /// periodic report-round samplers never need exclusive access.
    pub fn busy_integral_at(&self, now: SimTime) -> u128 {
        debug_assert!(now >= self.last_change, "sampling in the past");
        let dt = now.since(self.last_change).as_nanos() as u128;
        self.busy_integral + dt * self.busy as u128
    }

    /// Cumulative utilization in `[0, 1]` over `[t0, now]` (read-only).
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_nanos() as u128 * self.units as u128;
        if span == 0 {
            0.0
        } else {
            self.busy_integral_at(now) as f64 / span as f64
        }
    }

    /// Mean queue length over `[0, now]` (read-only).
    pub fn mean_queue_len(&self, now: SimTime) -> f64 {
        let span = now.as_nanos() as u128;
        if span == 0 {
            0.0
        } else {
            let dt = now.since(self.last_change).as_nanos() as u128;
            let projected = self.queue_integral
                + dt * (self.queue_high.len() + self.queue_normal.len()) as u128;
            projected as f64 / span as f64
        }
    }
}

/// Differencing helper for windowed utilization reports.
///
/// The control node of the load balancer samples each resource periodically;
/// a `UtilizationWindow` remembers the previous snapshot and converts the
/// busy-integral delta into a `[0, 1]` utilization for the elapsed window.
#[derive(Debug, Clone, Copy, Default)]
pub struct UtilizationWindow {
    last_integral: u128,
    last_time: SimTime,
}

impl UtilizationWindow {
    /// Consume the current busy integral and return utilization since the
    /// previous call (or since t=0 for the first call).
    pub fn sample(&mut self, now: SimTime, busy_integral: u128, units: u32) -> f64 {
        let dt = (now - self.last_time).as_nanos() as u128 * units as u128;
        let di = busy_integral - self.last_integral;
        self.last_integral = busy_integral;
        self.last_time = now;
        if dt == 0 {
            0.0
        } else {
            (di as f64 / dt as f64).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDur {
        SimDur::from_millis(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::ZERO + ms(x)
    }

    #[test]
    fn grants_immediately_when_free() {
        let mut s: FcfsServer<u32> = FcfsServer::new(1);
        let g = s.offer(at(0), ms(5), Priority::Normal, 7).unwrap();
        assert_eq!(g.done, at(5));
        assert_eq!(g.tag, 7);
        assert_eq!(s.in_service(), 1);
    }

    #[test]
    fn queues_when_busy_and_hands_over_on_complete() {
        let mut s: FcfsServer<&str> = FcfsServer::new(1);
        assert!(s.offer(at(0), ms(5), Priority::Normal, "a").is_some());
        assert!(s.offer(at(1), ms(3), Priority::Normal, "b").is_none());
        assert_eq!(s.queued(), 1);
        let g = s.complete(at(5)).unwrap();
        assert_eq!(g.tag, "b");
        assert_eq!(g.done, at(8));
        assert!(s.complete(at(8)).is_none());
        assert_eq!(s.in_service(), 0);
    }

    #[test]
    fn high_priority_overtakes() {
        let mut s: FcfsServer<&str> = FcfsServer::new(1);
        s.offer(at(0), ms(10), Priority::Normal, "running");
        s.offer(at(1), ms(1), Priority::Normal, "normal1");
        s.offer(at(2), ms(1), Priority::High, "oltp");
        s.offer(at(3), ms(1), Priority::Normal, "normal2");
        assert_eq!(s.complete(at(10)).unwrap().tag, "oltp");
        assert_eq!(s.complete(at(11)).unwrap().tag, "normal1");
        assert_eq!(s.complete(at(12)).unwrap().tag, "normal2");
    }

    #[test]
    fn multi_unit_parallelism() {
        let mut s: FcfsServer<u8> = FcfsServer::new(2);
        assert!(s.offer(at(0), ms(4), Priority::Normal, 1).is_some());
        assert!(s.offer(at(0), ms(4), Priority::Normal, 2).is_some());
        assert!(s.offer(at(0), ms(4), Priority::Normal, 3).is_none());
        let g = s.complete(at(4)).unwrap();
        assert_eq!(g.tag, 3);
    }

    #[test]
    fn utilization_accounting() {
        let mut s: FcfsServer<()> = FcfsServer::new(1);
        s.offer(at(0), ms(5), Priority::Normal, ());
        s.complete(at(5));
        // idle 5ms
        s.offer(at(10), ms(10), Priority::Normal, ());
        s.complete(at(20));
        let u = s.utilization(at(20));
        assert!((u - 0.75).abs() < 1e-9, "15ms busy of 20ms: {u}");
        assert_eq!(s.served(), 2);
    }

    #[test]
    fn windowed_utilization() {
        let mut s: FcfsServer<()> = FcfsServer::new(1);
        let mut w = UtilizationWindow::default();
        s.offer(at(0), ms(10), Priority::Normal, ());
        s.complete(at(10));
        let u1 = w.sample(at(10), s.busy_integral_at(at(10)), 1);
        assert!((u1 - 1.0).abs() < 1e-9);
        // Fully idle second window.
        let u2 = w.sample(at(30), s.busy_integral_at(at(30)), 1);
        assert!(u2.abs() < 1e-9);
    }

    #[test]
    fn mean_queue_len_integrates() {
        let mut s: FcfsServer<u8> = FcfsServer::new(1);
        s.offer(at(0), ms(10), Priority::Normal, 0);
        s.offer(at(0), ms(10), Priority::Normal, 1); // queued 0..10
        s.complete(at(10));
        s.complete(at(20));
        let q = s.mean_queue_len(at(20));
        assert!(
            (q - 0.5).abs() < 1e-9,
            "one waiter for half the horizon: {q}"
        );
    }
}
