//! A tiny generational slab for live simulation entities.
//!
//! Jobs (queries, transactions) are created and retired constantly; a slab
//! gives O(1) insert/remove/lookup with stable 8-byte keys, and the
//! generation tag catches use-after-free of stale job ids (events that race
//! with job completion), turning silent corruption into a `None`.

/// Key into a [`Slab`]: slot index plus generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlabKey {
    index: u32,
    gen: u32,
}

impl SlabKey {
    /// Slot index (for diagnostics / compact per-job arrays).
    pub fn index(self) -> u32 {
        self.index
    }

    /// Pack into a `u64` (stable round-trip with [`SlabKey::from_raw`]).
    pub fn to_raw(self) -> u64 {
        (self.index as u64) << 32 | self.gen as u64
    }

    /// Unpack a key produced by [`SlabKey::to_raw`].
    pub fn from_raw(raw: u64) -> SlabKey {
        SlabKey {
            index: (raw >> 32) as u32,
            gen: raw as u32,
        }
    }

    /// A key that will never be live (useful as a sentinel).
    pub const DANGLING: SlabKey = SlabKey {
        index: u32::MAX,
        gen: u32::MAX,
    };
}

enum Slot<T> {
    Free { next_free: Option<u32>, gen: u32 },
    Full { value: T, gen: u32 },
}

/// Generational slab allocator.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, returning its key.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        match self.free_head {
            Some(i) => {
                let (next_free, gen) = match &self.slots[i as usize] {
                    Slot::Free { next_free, gen } => (*next_free, *gen),
                    Slot::Full { .. } => unreachable!("free list points at a full slot"),
                };
                self.free_head = next_free;
                self.slots[i as usize] = Slot::Full { value, gen };
                SlabKey { index: i, gen }
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot::Full { value, gen: 0 });
                SlabKey { index: i, gen: 0 }
            }
        }
    }

    /// Remove by key. Returns the value if the key was live.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        match slot {
            Slot::Full { gen, .. } if *gen == key.gen => {
                let next_gen = key.gen.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Free {
                        next_free: self.free_head,
                        gen: next_gen,
                    },
                );
                self.free_head = Some(key.index);
                self.len -= 1;
                match old {
                    Slot::Full { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.slots.get(key.index as usize)? {
            Slot::Full { value, gen } if *gen == key.gen => Some(value),
            _ => None,
        }
    }

    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize)? {
            Slot::Full { value, gen } if *gen == key.gen => Some(value),
            _ => None,
        }
    }

    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// A shareable view for lane-parallel access (see [`ParSlabView`]).
    pub fn par_view(&mut self) -> ParSlabView<'_, T> {
        ParSlabView {
            slots: self.slots.as_mut_ptr(),
            len: self.slots.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Iterate live entries.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Full { value, gen } => Some((
                SlabKey {
                    index: i as u32,
                    gen: *gen,
                },
                value,
            )),
            Slot::Free { .. } => None,
        })
    }
}

/// A raw view over a [`Slab`] that several lane threads can share, each
/// touching a **disjoint** set of keys.
///
/// The windowed executor partitions work by lane (one lane per PE) and
/// every job is pinned to exactly one lane, so no two threads ever resolve
/// the same key concurrently. That partitioning is the caller's invariant;
/// the view only re-checks the generation tag, exactly like
/// [`Slab::get_mut`].
///
/// Borrowing from `&mut Slab` keeps the slab itself untouchable (no
/// insert/remove/reallocation) for the view's lifetime.
pub struct ParSlabView<'a, T> {
    slots: *mut Slot<T>,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut Slab<T>>,
}

// SAFETY: the view hands out `&mut T` for *disjoint* keys only (caller
// invariant above); the backing storage cannot move or be freed while the
// exclusive borrow on the slab is held.
unsafe impl<T: Send> Send for ParSlabView<'_, T> {}
unsafe impl<T: Send> Sync for ParSlabView<'_, T> {}

impl<T> ParSlabView<'_, T> {
    /// Resolve `key` to its live value, or `None` if stale.
    ///
    /// # Safety
    /// No other thread may hold a reference obtained from this view for
    /// the same slot index while the returned borrow is live.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, key: SlabKey) -> Option<&mut T> {
        if key.index as usize >= self.len {
            return None;
        }
        // SAFETY: index bounds-checked above; disjointness per the caller
        // invariant makes the `&mut` exclusive.
        let slot = unsafe { &mut *self.slots.add(key.index as usize) };
        match slot {
            Slot::Full { value, gen } if *gen == key.gen => Some(value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn par_view_resolves_disjoint_keys_across_threads() {
        let mut s = Slab::new();
        let keys: Vec<SlabKey> = (0..64).map(|i| s.insert(i as u64)).collect();
        let stale = keys[10];
        s.remove(stale);
        let keys: Vec<SlabKey> = keys.into_iter().filter(|k| *k != stale).collect();
        let view = s.par_view();
        std::thread::scope(|scope| {
            for chunk in keys.chunks(16) {
                let view = &view;
                scope.spawn(move || {
                    for k in chunk {
                        // SAFETY: each thread owns a disjoint chunk of keys.
                        let v = unsafe { view.get_mut(*k) }.expect("live key");
                        *v += 1000;
                    }
                    // SAFETY: a stale key resolves to None, never a slot
                    // another thread is using.
                    assert!(unsafe { view.get_mut(stale) }.is_none());
                });
            }
        });
        for k in keys {
            assert!(*s.get(k).unwrap() >= 1000);
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_key_rejected_after_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        // Slot is reused but generation differs.
        assert_eq!(b.index(), a.index());
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn iter_sees_only_live() {
        let mut s = Slab::new();
        let keys: Vec<_> = (0..5).map(|i| s.insert(i)).collect();
        s.remove(keys[1]);
        s.remove(keys[3]);
        let live: Vec<i32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    fn dangling_never_resolves() {
        let mut s: Slab<u8> = Slab::new();
        s.insert(1);
        assert!(s.get(SlabKey::DANGLING).is_none());
    }

    proptest! {
        /// Random interleavings of insert/remove keep len() consistent with
        /// a reference model and never resolve stale keys.
        #[test]
        fn prop_model(ops in proptest::collection::vec(0u8..3, 1..400)) {
            let mut slab = Slab::new();
            let mut live: Vec<(SlabKey, u32)> = Vec::new();
            let mut dead: Vec<SlabKey> = Vec::new();
            let mut next_val = 0u32;
            for op in ops {
                match op {
                    0 => {
                        let k = slab.insert(next_val);
                        live.push((k, next_val));
                        next_val += 1;
                    }
                    1 if !live.is_empty() => {
                        let (k, v) = live.remove(live.len() / 2);
                        prop_assert_eq!(slab.remove(k), Some(v));
                        dead.push(k);
                    }
                    _ => {
                        for k in &dead {
                            prop_assert!(slab.get(*k).is_none());
                        }
                    }
                }
                prop_assert_eq!(slab.len(), live.len());
                for (k, v) in &live {
                    prop_assert_eq!(slab.get(*k), Some(v));
                }
            }
        }
    }
}
