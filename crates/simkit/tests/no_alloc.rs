//! Allocation audit of the future-event-list hot path.
//!
//! Events are stored by value inside both FEL implementations, so a
//! steady-state push/pop cycle at constant depth must never touch the
//! heap once the backing storage is warm — for the binary heap and for
//! the calendar queue (whose bucket array only resizes when the depth
//! crosses a threshold). This pins the zero-allocation property the
//! event-loop perf work relies on: per-event cost is pointer shuffling,
//! not allocator traffic.
//!
//! Lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide.

use simkit::{EventQueue, ItemKey, LaneLog, MergeCursor, QueueKind, SimDur, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-wide, so tests must not overlap: each takes
/// this lock for its whole measurement window.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Hold the queue at constant depth: pop one event, push its follow-up a
/// little later — the steady state of every hardware server model.
fn cycle_allocs(q: &mut EventQueue<u64>, steps: u64) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..steps {
        let (t, ev) = q.pop_next().expect("queue stays non-empty");
        q.at(t + SimDur::from_micros(100 + ev % striped(ev)), ev);
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Deterministic per-event jitter so pushes spread across calendar days.
fn striped(ev: u64) -> u64 {
    37 + (ev * 31) % 400
}

fn warmed_queue(kind: QueueKind, warmup_steps: u64) -> EventQueue<u64> {
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind, 1 << 10);
    for i in 0..512u64 {
        q.at(SimTime::ZERO + SimDur::from_micros(i), i);
    }
    let _ = cycle_allocs(&mut q, warmup_steps);
    q
}

/// The default FEL is *strictly* allocation-free once warm: sift-up and
/// sift-down move entries inside the backing vector, and constant depth
/// means that vector never regrows.
#[test]
fn event_heap_steady_state_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let mut q = warmed_queue(QueueKind::BinaryHeap, 4096);
    let steady = cycle_allocs(&mut q, 100_000);
    assert_eq!(
        steady, 0,
        "heap FEL allocated {steady} times over 100k steady-state events"
    );
    assert_eq!(q.len(), 512);
}

/// The calendar queue is allocation-free in the *amortized* sense: pops
/// (`swap_remove`) keep each day's capacity, so a bucket only allocates
/// when it exceeds its historical high-water mark — rarer and rarer as
/// occupancy maxima converge, but never exactly never (the tail of the
/// per-day occupancy distribution is unbounded). Pin the rate at ≤ 0.25%
/// of events after warm-up; the strict-zero claim belongs to the heap,
/// which is the default (and the soak's) FEL.
/// The windowed executor's per-window machinery — formation item lists,
/// lane logs, and the merge cursor — reuses its backing storage, so a
/// steady-state form/execute/commit cycle allocates nothing once warm.
/// Windows now form during query operator phases too (not just pure-OLTP
/// stretches), so this loop runs millions of times per mixed-workload
/// soak; every item both defers a follow-up past the horizon and
/// consumes one in-window, covering both push paths and the commit-time
/// sequence burn.
#[test]
fn window_machinery_steady_state_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    const LANES: usize = 4;
    const WINDOW: usize = 32;
    let mut q: EventQueue<u64> = EventQueue::with_kind(QueueKind::BinaryHeap, 1 << 10);
    for i in 0..128u64 {
        q.at(SimTime::ZERO + SimDur::from_micros(i * 100), i);
    }
    let mut logs: Vec<LaneLog<u64>> = (0..LANES).map(|_| LaneLog::new()).collect();
    let mut items: Vec<Vec<(SimTime, u64, u64)>> = (0..LANES).map(|_| Vec::new()).collect();
    let mut active: Vec<u32> = Vec::new();
    let mut merge = MergeCursor::new();
    let mut cycle = |q: &mut EventQueue<u64>, windows: usize| -> u64 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..windows {
            active.clear();
            for it in items.iter_mut() {
                it.clear();
            }
            for log in logs.iter_mut() {
                log.clear();
            }
            // Formation: route a fixed-size window into per-lane lists.
            for _ in 0..WINDOW {
                let Some((t, seq, ev)) = q.window_pop() else {
                    break;
                };
                let lane = (ev % LANES as u64) as usize;
                if items[lane].is_empty() {
                    active.push(lane as u32);
                }
                items[lane].push((t, seq, ev));
            }
            // Lane execution: one deferred push (keeps the FEL at
            // constant depth) plus one consumed same-time follow-up per
            // item, handled as its own Gen-keyed item.
            for &lane in &active {
                let l = lane as usize;
                let log = &mut logs[l];
                for k in 0..items[l].len() {
                    let (t, seq, ev) = items[l][k];
                    log.begin_item(t, ItemKey::Orig(seq));
                    log.push_defer(t + SimDur::from_micros(12_800), ev);
                    let rank = log.push_consumed(t + SimDur::from_nanos(1));
                    log.begin_item(t + SimDur::from_nanos(1), ItemKey::Gen(rank));
                }
            }
            // Merge commit, stepped through the incremental cursor as the
            // simulator does when interleaving residual streams.
            merge.begin(&logs, &active);
            while merge.replay_next(q, &mut logs).is_some() {}
        }
        ALLOCS.load(Ordering::Relaxed) - before
    };
    let _warm = cycle(&mut q, 64);
    let steady = cycle(&mut q, 2048);
    assert_eq!(
        steady, 0,
        "window machinery allocated {steady} times over 2048 steady-state windows"
    );
    assert_eq!(q.len(), 128);
}

#[test]
fn calendar_queue_steady_state_allocations_amortize_away() {
    let _serial = SERIAL.lock().unwrap();
    let mut q = warmed_queue(QueueKind::Calendar, 104_096);
    let steady = cycle_allocs(&mut q, 400_000);
    assert!(
        steady <= 1000,
        "calendar FEL allocated {steady} times over 400k steady-state events (> 0.25%)"
    );
    assert_eq!(q.len(), 512);
}
