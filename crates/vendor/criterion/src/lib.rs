//! Minimal vendored stand-in for `criterion` (offline build).
//!
//! Implements the subset used by this workspace's benches: `Criterion`,
//! `benchmark_group` with `sample_size`, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Timing is wall-clock with automatic iteration scaling; results are
//! printed as `name … median ns/iter (min … max)`. There is no statistical
//! analysis, plotting, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement budget per benchmark (per sample).
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (upstream default is 100;
    /// this stand-in favors fast `cargo bench` runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            prefix: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibrate: find an iteration count that fills the sample budget.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_BUDGET || iters >= 1 << 24 {
            break;
        }
        let scale = if b.elapsed.is_zero() {
            16
        } else {
            (SAMPLE_BUDGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(scale);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{name:<50} {} / iter (min {}, max {})",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
