//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (syn/quote are not
//! available offline). Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (arity 1 is treated as a transparent newtype),
//! * enums whose variants are unit, tuple, or struct-like,
//!
//! with no generics or lifetimes. Unsupported shapes panic at expansion
//! time with a clear message.
//!
//! One container attribute is honoured: `#[serde(default)]` on a struct
//! with named fields makes deserialization start from
//! `<T as Default>::default()` and overwrite only the fields present in
//! the JSON object (the type must implement `Default`). This is what the
//! declarative scenario specs rely on so hand-written JSON can omit every
//! knob it does not care about. Field-level attributes remain unsupported.
//!
//! Encoding (mirrored by `serde::Deserialize` impls generated here):
//!
//! * named struct        → `{"field": value, …}`
//! * newtype struct      → inner value (transparent)
//! * tuple struct (n>1)  → `[v0, v1, …]`
//! * unit enum variant   → `"Variant"`
//! * newtype variant     → `{"Variant": value}`
//! * tuple variant (n>1) → `{"Variant": [v0, …]}`
//! * struct variant      → `{"Variant": {"field": value, …}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------

enum Fields {
    Unit,
    /// Tuple struct/variant with this arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
    /// Container-level `#[serde(default)]`: deserialize named structs by
    /// overlaying present fields onto `Default::default()`.
    container_default: bool,
}

/// Does this attribute `[...]` group spell `serde(default)`?
fn is_serde_default_attr(group: &TokenTree) -> bool {
    let TokenTree::Group(g) = group else {
        return false;
    };
    let mut inner = g.stream().into_iter();
    match (inner.next(), inner.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let mut container_default = false;

    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(group) = toks.next() {
                    container_default |= is_serde_default_attr(&group);
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type `{name}`)");
        }
    }

    let body = match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };

    if container_default && !matches!(body, Body::Struct(Fields::Named(_))) {
        panic!("serde_derive: #[serde(default)] is only supported on structs with named fields");
    }

    Item {
        name,
        body,
        container_default,
    }
}

/// Parse `attr* vis? ident : type` fields separated by top-level commas.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments arrive as #[doc = "…"]).
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = toks.next() else {
            break;
        };
        fields.push(id.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: angle brackets are the only grouping not already
        // folded into a Group token, so track their depth for the comma.
        let mut angle = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        toks.next();
                        break;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    }
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    fields
}

/// Count tuple-struct/variant fields: top-level commas + 1 (ignoring a
/// trailing comma), 0 for an empty stream.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    let mut last_was_comma = false;
    for t in stream {
        saw_any = true;
        last_was_comma = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if !saw_any {
        0
    } else if last_was_comma {
        count
    } else {
        count + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = toks.next() else {
            break;
        };
        let name = id.to_string();
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and the separating comma.
        loop {
            match toks.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => format!("Ok({name})"),
        Body::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!(
                    "::serde::Deserialize::from_value(a.get({i}).ok_or_else(|| ::serde::Error::expected(\"tuple element\", \"{name}\"))?)?"
                ))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?; Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Struct(Fields::Named(fields)) if item.container_default => {
            let arms: Vec<String> = fields
                .iter()
                .map(|f| format!("\"{f}\" => out.{f} = ::serde::Deserialize::from_value(val)?,"))
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?; \
                 let mut out = <{name} as ::std::default::Default>::default(); \
                 for (key, val) in obj {{ match key.as_str() {{ {} _ => {{}} }} }} \
                 Ok(out)",
                arms.join(" ")
            )
        }
        Body::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?; Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!(
                                    "::serde::Deserialize::from_value(a.get({i}).ok_or_else(|| ::serde::Error::expected(\"tuple element\", \"{name}::{vn}\"))?)?"
                                ))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let a = payload.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vn}\"))?; return Ok({name}::{vn}({})); }}",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\", \"{name}::{vn}\")?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let obj = payload.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vn}\"))?; return Ok({name}::{vn} {{ {} }}); }}",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(s) = v {{ match s.as_str() {{ {unit} _ => {{}} }} }} \
                 if let ::serde::Value::Object(o) = v {{ if o.len() == 1 {{ let (tag, payload) = &o[0]; match tag.as_str() {{ {tagged} _ => {{}} }} }} }} \
                 Err(::serde::Error::expected(\"variant of {name}\", \"{name}\"))",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
