//! Minimal vendored stand-in for `serde`, written for this repository's
//! offline build environment.
//!
//! The real serde crates cannot be fetched (no network access), so this
//! crate provides the small subset the workspace actually uses: a JSON
//! [`Value`] data model, [`Serialize`] / [`Deserialize`] traits expressed
//! directly against that model, and `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the sibling `serde_derive` proc-macro crate)
//! for plain structs and enums without field attributes.
//!
//! The wire format (produced by the sibling `serde_json` stand-in) is
//! self-consistent JSON: values written by this implementation parse back
//! to identical values. It makes no attempt to match upstream serde's
//! externally-tagged enum encodings beyond what round-tripping needs.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value. Integers keep 64-bit precision (separate signed/unsigned
/// variants) so `u64` seeds and counters round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    pub fn expected(what: &str, context: &str) -> Error {
        Error {
            msg: format!("expected {what} while deserializing {context}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert a Rust value into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Construct a Rust value from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: look up and deserialize a struct field.
pub fn field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!(
            "missing field `{name}` in {context}"
        ))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) if *x <= i64::MAX as u64 => *x as i64,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            // Non-finite floats serialize as null (JSON has no NaN literal).
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                Ok(($($t::from_value(
                    a.get($n).ok_or_else(|| Error::expected("tuple element", "tuple"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
