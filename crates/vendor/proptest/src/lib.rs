//! Minimal vendored stand-in for `proptest` (offline build).
//!
//! Supports the subset this workspace uses:
//!
//! * `proptest! { #![proptest_config(…)]? #[test] fn name(arg in strategy, …) { … } }`
//! * range strategies over integers / `f64` (`0u64..50`, `-1e6f64..1e6`),
//! * tuple strategies up to arity 5,
//! * `proptest::collection::vec(strategy, size_or_range)`,
//! * `prop_assert!` / `prop_assert_eq!` with optional format messages,
//! * `ProptestConfig { cases, .. }`.
//!
//! Generation is deterministic: the RNG is seeded from the test's name, so
//! failures reproduce across runs and machines. There is no shrinking —
//! the failing inputs are printed instead.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(…)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for upstream compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // Upstream default is 256; this suite runs whole simulations
            // in some properties, so keep the default moderate.
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (returned by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic xoshiro256++ generator used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = [0u64; 4];
        let mut z = h;
        for slot in &mut s {
            // SplitMix64 expansion.
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = x ^ (x >> 31);
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)` (n > 0), bias-free via rejection.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % n;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Element count for [`collection::vec`]: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange(r)
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let r = &self.size.0;
            let len = if r.end - r.start <= 1 {
                r.start
            } else {
                r.start + rng.below((r.end - r.start) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// The property-test entry macro. User-supplied attributes (including
/// `#[test]`) are forwarded onto the generated function, exactly like
/// upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Snapshot the inputs up front: the body takes them by
                    // value, so they are gone by the time a failure prints.
                    let inputs = format!("{:#?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = {
                        #[allow(unused_mut)]
                        let mut run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        };
                        run()
                    };
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            a in 3u32..17,
            b in -5i64..5,
            x in 0.0f64..1.0,
            v in collection::vec((0u8..4, 10u64..20), 0..50),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(v.len() < 50);
            for (p, q) in &v {
                prop_assert!(*p < 4, "p = {}", p);
                prop_assert!((10..20).contains(q));
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
