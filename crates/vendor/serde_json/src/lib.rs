//! Minimal vendored stand-in for `serde_json`, matched to the vendored
//! `serde` data model.
//!
//! Provides `to_string` / `to_string_pretty` / `from_str` / `to_value`,
//! the [`Value`] type (re-exported from `serde`), and a `json!` macro
//! limited to object literals with expression values — the forms this
//! workspace uses. Output is real JSON; non-finite floats are written as
//! `null` (JSON has no NaN/Infinity literals) and read back as NaN where
//! an `f64` is expected.

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error { msg: e.to_string() }
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error {
            msg: format!("trailing characters at offset {}", p.pos),
        });
    }
    Ok(T::from_value(&value)?)
}

/// Build a [`Value`] from an object literal. Supports
/// `json!({ "key": expr, … })` and `json!(expr)`.
#[macro_export]
macro_rules! json {
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($k.to_string(), $crate::to_value(&$v)) ),*
        ])
    };
    (null) => { $crate::Value::Null };
    ($v:expr) => { $crate::to_value(&$v) };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same bits (e.g. "1.0", "0.25").
                let s = format!("{x:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at offset {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy the full UTF-8 character.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(18_446_744_073_709_551_615)),
            ("b".to_string(), Value::I64(-3)),
            ("c".to_string(), Value::F64(0.25)),
            (
                "d".to_string(),
                Value::Array(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("x\"y".into()),
                ]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_shortest_round_trip() {
        for x in [1.0f64, 0.1, 1e300, -2.5e-10, 131.25] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let name = "series-1".to_string();
        let v = json!({ "series": name, "points": vec![1u32, 2, 3] });
        assert_eq!(v.get("series").unwrap(), &Value::Str("series-1".into()));
        assert_eq!(
            v.get("points").unwrap(),
            &Value::Array(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
    }
}
