//! Minimal vendored stand-in for the `bytes` crate (offline build).
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits
//! with the little-endian accessors the workload trace codec uses. Backed
//! by plain `Vec<u8>` — no refcounted zero-copy splitting, which the
//! workspace does not need.

/// Immutable byte buffer with a read cursor (for [`Buf`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
    cursor: usize,
}

impl Bytes {
    pub fn from_vec(data: Vec<u8>) -> Bytes {
        Bytes { data, cursor: 0 }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.cursor
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer holding the given sub-range of the unconsumed bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from_vec(self.data[self.cursor..][range].to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes::from_vec(data)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.cursor..]
    }
}

/// Growable byte buffer (for [`BufMut`]).
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

/// Sequential reader over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.copy_bytes(2).try_into().expect("2 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_bytes(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_bytes(8).try_into().expect("8 bytes"))
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(self.len() >= n, "buffer underflow");
        let out = self.data[self.cursor..self.cursor + n].to_vec();
        self.cursor += n;
        out
    }
}

/// Sequential writer into a byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(0xDEAD_BEEF_CAFE_F00D);
        b.put_u16_le(7);
        b.put_u8(3);
        b.put_u32_le(42);
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_reslices_unconsumed() {
        let b = Bytes::from_vec(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
    }
}
