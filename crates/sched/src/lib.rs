//! # sched — multi-resource admission control & malleable query scheduling
//!
//! The paper (Rahm & Marek, VLDB 1995) balances load only *after* a query
//! is admitted: admission itself is a fixed per-coordinator MPL slot, so
//! under overload every placement strategy collapses the same way and
//! memory pressure only shows up as working-space thrash. Following
//! Garofalakis & Ioannidis (*Multi-Resource Parallel Query Scheduling and
//! Optimization*), this crate treats queries as **malleable multi-resource
//! tasks**: each arrival carries a cost-estimated [`AdmissionTicket`]
//! (memory demand from the hash-join model, CPU work, estimated degree of
//! parallelism and its no-I/O floor), and a pluggable [`AdmissionPolicy`]
//! decides — *before* the query enters the system — whether it starts now,
//! starts with a **shrunken degree**, or waits.
//!
//! ## Components
//!
//! * [`AdmissionTicket`] / [`Grant`] — the request and the resources a
//!   policy reserved for it (released on completion);
//! * [`AdmissionPolicy`] — the decision trait, with three built-ins:
//!   * [`FcfsMpl`] — admit everything immediately; reproduces the paper's
//!     per-PE MPL admission **bit-for-bit** (the queue in front of the MPL
//!     slots never fills, no resources are reserved);
//!   * [`MemoryReservation`] — admit while the sum of reserved join
//!     working-space memory stays within a cluster-wide budget;
//!   * [`Malleable`] — additionally budget the total degree of
//!     parallelism: shrink a query's degree down to its no-I/O floor
//!     before making it wait, and shrink pre-emptively when the broker's
//!     report rounds show hot CPUs;
//! * [`Scheduler`] — the queue in front of the policy: weighted priority
//!   classes with **starvation aging** (a queued query's effective
//!   priority grows with its wait), bounded backlog with rejection, and
//!   backpressure statistics (shrunken admissions, rejections, queued
//!   work);
//! * [`AdmissionConfig`] — the serializable knob block scenario specs use.
//!
//! The crate is simulator-agnostic: jobs are opaque `u64` ids, time is
//! `simkit::SimTime`, and the resource signals driving [`Malleable`] are
//! plain utilization numbers fed from whatever broker the host system
//! runs. `snsim::System` wires it between workload arrivals and launch.
//!
//! ```
//! use sched::{AdmissionConfig, AdmissionPolicyKind, AdmissionTicket};
//! use simkit::SimTime;
//!
//! // A malleable scheduler for 4 nodes with 50 buffer pages each.
//! let cfg = AdmissionConfig {
//!     policy: AdmissionPolicyKind::Malleable,
//!     ..AdmissionConfig::default()
//! };
//! let mut sched = cfg.build(4, 50);
//!
//! let ticket = |job: u64| AdmissionTicket {
//!     class: 0,
//!     coord: 0,
//!     mem_pages: 120.0,
//!     cpu_work_ms: 900.0,
//!     degree: 4,
//!     degree_floor: 1,
//!     weight: 1.0,
//!     submitted: SimTime::ZERO,
//! };
//!
//! // First query fits at full degree; later ones shrink, then wait.
//! let mut starts = Vec::new();
//! for job in 0..4 {
//!     sched.submit(job, ticket(job), true);
//! }
//! sched.pump_into(SimTime::ZERO, &mut starts);
//! assert_eq!(starts[0], 0);
//! assert_eq!(sched.degree_cap(0), 0, "full degree (no cap)");
//! assert!(starts.len() < 4, "the tail waits for releases");
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod policy;
pub mod scheduler;
pub mod ticket;

pub use config::{AdmissionConfig, AdmissionPolicyKind, ClassPriority};
pub use policy::{AdmissionPolicy, FcfsMpl, Malleable, MemoryReservation, ResourceSignals};
pub use scheduler::Scheduler;
pub use ticket::{AdmissionTicket, Grant, Verdict};
