//! The admission scheduler: a weighted-priority queue with starvation
//! aging in front of one [`AdmissionPolicy`].
//!
//! Jobs are opaque `u64` ids. The host system submits a ticket per
//! arrival, pumps the queue after every submit, release and report round,
//! and starts whatever the pump hands back. Everything is deterministic:
//! the pump always picks the waiting ticket with the highest *effective*
//! priority (base class weight + `aging_rate` per queued second), ties
//! broken by arrival order, and stops at the first `Wait` verdict.

use crate::policy::{AdmissionPolicy, ResourceSignals};
use crate::ticket::{AdmissionTicket, Grant, Verdict};
use simkit::SimTime;
use std::collections::BTreeMap;

struct Waiting {
    job: u64,
    seq: u64,
    ticket: AdmissionTicket,
}

/// The queue + policy pair the simulator owns (one per run).
pub struct Scheduler {
    policy: Box<dyn AdmissionPolicy>,
    /// Effective-priority growth per queued second (starvation aging).
    aging_rate: f64,
    /// Queue bound; 0 = unbounded, otherwise arrivals beyond it are
    /// rejected outright.
    max_queue: usize,
    queue: Vec<Waiting>,
    /// Grants of admitted-and-running jobs (free grants are not tracked).
    running: BTreeMap<u64, Grant>,
    seq: u64,
    shrunk: u64,
    rejected: u64,
}

impl Scheduler {
    /// A scheduler over `policy` with the given aging rate and queue
    /// bound (0 = unbounded).
    pub fn new(policy: Box<dyn AdmissionPolicy>, aging_rate: f64, max_queue: u32) -> Scheduler {
        Scheduler {
            policy,
            aging_rate,
            max_queue: max_queue as usize,
            queue: Vec::new(),
            running: BTreeMap::new(),
            seq: 0,
            shrunk: 0,
            rejected: 0,
        }
    }

    /// Report label of the underlying policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Submit one arrival. Returns `false` if the queue bound rejected it
    /// (the caller drops the job); otherwise the ticket is queued — call
    /// [`Scheduler::pump_into`] to collect everything that may start now.
    ///
    /// `droppable: false` bypasses the queue bound: closed-loop
    /// (single-user) classes relaunch only on completion, so dropping one
    /// arrival would silence the class for the rest of the run.
    pub fn submit(&mut self, job: u64, ticket: AdmissionTicket, droppable: bool) -> bool {
        if droppable && self.max_queue > 0 && self.queue.len() >= self.max_queue {
            self.rejected += 1;
            return false;
        }
        self.seq += 1;
        self.queue.push(Waiting {
            job,
            seq: self.seq,
            ticket,
        });
        true
    }

    /// Effective priority of a waiting ticket at `now`.
    fn effective(&self, w: &Waiting, now: SimTime) -> f64 {
        w.ticket.weight + self.aging_rate * now.since(w.ticket.submitted).as_secs_f64()
    }

    /// Admit waiting tickets in effective-priority order until the policy
    /// answers `Wait` (or the queue drains). Each started job id is
    /// appended to `out`; a job's degree cap (if any) is queried through
    /// [`Scheduler::degree_cap`] at placement time. The caller-owned
    /// buffer is reused across calls — no per-call allocation on the
    /// arrival hot path.
    pub fn pump_into(&mut self, now: SimTime, out: &mut Vec<u64>) {
        while !self.queue.is_empty() {
            let mut best = 0;
            let mut best_key = (self.effective(&self.queue[0], now), self.queue[0].seq);
            for (i, w) in self.queue.iter().enumerate().skip(1) {
                let key = (self.effective(w, now), w.seq);
                // Higher priority wins; equal priority goes to the
                // earlier arrival (smaller seq).
                if key.0 > best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
                    best = i;
                    best_key = key;
                }
            }
            match self.policy.admit(&self.queue[best].ticket) {
                Verdict::Admit(grant) => {
                    let w = self.queue.swap_remove(best);
                    if grant.degree_cap != 0 && grant.degree_cap < w.ticket.degree {
                        self.shrunk += 1;
                    }
                    if !grant.is_free() {
                        self.running.insert(w.job, grant);
                    }
                    out.push(w.job);
                }
                Verdict::Wait => break,
            }
        }
    }

    /// A previously admitted job finished or aborted: release its grant.
    /// No-op for jobs admitted with a free grant (e.g. under
    /// [`crate::FcfsMpl`]) — they were never tracked.
    pub fn release(&mut self, job: u64) {
        if let Some(grant) = self.running.remove(&job) {
            self.policy.release(&grant);
        }
    }

    /// Degree cap imposed on a running job's placement requests (0 =
    /// none).
    pub fn degree_cap(&self, job: u64) -> u32 {
        self.running.get(&job).map_or(0, |g| g.degree_cap)
    }

    /// Forward one broker report round to the policy; pump afterwards —
    /// a mode change (e.g. [`crate::Malleable`] cooling down) can unblock
    /// the queue without any completion.
    pub fn on_report(&mut self, signals: &ResourceSignals) {
        self.policy.on_report(signals);
    }

    /// Currently waiting tickets.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Estimated CPU work (ms) sitting in the queue (diagnostics).
    pub fn queued_work_ms(&self) -> f64 {
        self.queue.iter().map(|w| w.ticket.cpu_work_ms).sum()
    }

    /// Age (ms) at `now` of the oldest ticket still waiting, 0 with an
    /// empty queue. Read-only; sampled per report round by the
    /// observability layer as the backlog-knee signal.
    pub fn oldest_waiting_ms(&self, now: SimTime) -> f64 {
        self.queue
            .iter()
            .map(|w| now.since(w.ticket.submitted).as_millis_f64())
            .fold(0.0, f64::max)
    }

    /// Admissions whose degree was shrunk below the ticket's estimate.
    pub fn shrunk(&self) -> u64 {
        self.shrunk
    }

    /// Arrivals rejected by the queue bound.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FcfsMpl, Malleable, MemoryReservation};
    use simkit::SimDur;

    fn ticket(mem: f64, weight: f64, submitted: SimTime) -> AdmissionTicket {
        AdmissionTicket {
            class: 0,
            coord: 0,
            mem_pages: mem,
            cpu_work_ms: 50.0,
            degree: 4,
            degree_floor: 2,
            weight,
            submitted,
        }
    }

    #[test]
    fn fcfs_passes_through_without_bookkeeping() {
        let mut s = Scheduler::new(Box::new(FcfsMpl), 1.0, 0);
        let mut out = Vec::new();
        for job in 0..5u64 {
            assert!(s.submit(job, ticket(100.0, 1.0, SimTime::ZERO), true));
        }
        s.pump_into(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.degree_cap(0), 0);
        s.release(0); // never tracked: no-op
        assert_eq!((s.shrunk(), s.rejected()), (0, 0));
    }

    #[test]
    fn queue_bound_rejects_excess_arrivals() {
        let mut s = Scheduler::new(Box::new(MemoryReservation::new(100.0)), 1.0, 2);
        let mut out = Vec::new();
        assert!(s.submit(0, ticket(90.0, 1.0, SimTime::ZERO), true));
        s.pump_into(SimTime::ZERO, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        // Two queue up, the third is rejected.
        assert!(s.submit(1, ticket(90.0, 1.0, SimTime::ZERO), true));
        assert!(s.submit(2, ticket(90.0, 1.0, SimTime::ZERO), true));
        assert!(!s.submit(3, ticket(90.0, 1.0, SimTime::ZERO), true));
        assert_eq!(s.rejected(), 1);
        assert_eq!(s.queue_len(), 2);
        // Release frees the budget: the queue drains FIFO.
        s.release(0);
        s.pump_into(SimTime::ZERO, &mut out);
        assert_eq!(out[0], 1);
    }

    #[test]
    fn priorities_order_the_queue() {
        let mut s = Scheduler::new(Box::new(MemoryReservation::new(100.0)), 0.0, 0);
        let mut out = Vec::new();
        assert!(s.submit(0, ticket(90.0, 1.0, SimTime::ZERO), true));
        s.pump_into(SimTime::ZERO, &mut out);
        out.clear();
        s.submit(1, ticket(50.0, 1.0, SimTime::ZERO), true);
        s.submit(2, ticket(50.0, 8.0, SimTime::ZERO), true);
        s.release(0);
        s.pump_into(SimTime::ZERO, &mut out);
        assert_eq!(out[0], 2, "heavier class jumps the queue");
    }

    /// Satellite acceptance: a low-priority query under a saturating
    /// high-priority stream must eventually admit — starvation aging
    /// lifts its effective priority above the fresh high-priority
    /// arrivals.
    #[test]
    fn starvation_aging_admits_low_priority_eventually() {
        // Budget fits exactly one 90-page query at a time.
        let mut s = Scheduler::new(Box::new(MemoryReservation::new(100.0)), 1.0, 0);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        // The starving low-priority query arrives first.
        s.submit(1000, ticket(90.0, 1.0, t), true);
        // Then a saturating stream: a new high-priority (weight 5) query
        // arrives every second; one release per second keeps the policy
        // full. Without aging the low-priority ticket would lose every
        // pump to a fresher high-priority arrival.
        let mut running: Option<u64> = None;
        let mut low_started_at = None;
        for step in 0..20u64 {
            t += SimDur::from_secs(1);
            s.submit(step, ticket(90.0, 5.0, t), true);
            if let Some(r) = running.take() {
                s.release(r);
            }
            s.pump_into(t, &mut out);
            assert!(out.len() <= 1, "budget admits one at a time");
            if let Some(&job) = out.first() {
                running = Some(job);
                if job == 1000 {
                    low_started_at = Some(step);
                    break;
                }
            }
            out.clear();
        }
        let started = low_started_at.expect("low-priority query must not starve");
        // weight 1 + age crosses weight 5 + age' once it has waited ~4 s
        // longer than the freshest competitor (the exact tie at 4 s goes
        // to the earlier arrival).
        assert!(
            (3..=6).contains(&started),
            "aging crossover expected after ~3-6 rounds, got {started}"
        );
    }

    #[test]
    fn malleable_pump_reports_shrunk_admissions() {
        let mut s = Scheduler::new(Box::new(Malleable::new(1e9, 6, 0.85)), 1.0, 0);
        let mut out = Vec::new();
        s.submit(0, ticket(10.0, 1.0, SimTime::ZERO), true);
        s.submit(1, ticket(10.0, 1.0, SimTime::ZERO), true);
        s.pump_into(SimTime::ZERO, &mut out);
        assert_eq!(out, vec![0, 1]);
        assert_eq!(s.degree_cap(0), 0, "first at full degree");
        assert_eq!(s.shrunk(), 1);
        assert_eq!(s.degree_cap(1), 2);
        s.release(1);
        assert_eq!(s.degree_cap(1), 0);
    }

    #[test]
    fn queued_work_tracks_the_backlog() {
        let mut s = Scheduler::new(Box::new(MemoryReservation::new(50.0)), 1.0, 0);
        let mut out = Vec::new();
        s.submit(0, ticket(45.0, 1.0, SimTime::ZERO), true);
        s.pump_into(SimTime::ZERO, &mut out);
        s.submit(1, ticket(45.0, 1.0, SimTime::ZERO), true);
        s.submit(2, ticket(45.0, 1.0, SimTime::ZERO), true);
        s.pump_into(SimTime::ZERO, &mut out);
        assert_eq!(s.queued_work_ms(), 100.0);
    }
}
