//! The serializable `admission` knob block: which policy runs, its
//! budgets, the queue bound, and the priority tiers.

use crate::policy::{FcfsMpl, Malleable, MemoryReservation};
use crate::scheduler::Scheduler;
use serde::{Deserialize, Serialize};

/// Which admission policy gates arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicyKind {
    /// The paper's behaviour: per-PE MPL slots only (the default —
    /// reproduces legacy runs bit-for-bit).
    FcfsMpl,
    /// Admit while Σ reserved working-space memory fits a cluster budget.
    MemoryReservation,
    /// Memory budget plus a total-parallelism budget with degree
    /// shrinking (malleable scheduling).
    Malleable,
}

/// Priority weight of one workload class, matched by class name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ClassPriority {
    /// Workload class name (e.g. `"join-1%"`, `"debit-credit"`).
    pub class: String,
    /// Base priority weight (higher = served first; default 1).
    pub weight: f64,
}

impl Default for ClassPriority {
    fn default() -> Self {
        ClassPriority {
            class: String::new(),
            weight: 1.0,
        }
    }
}

/// The `admission` knob block of a scenario spec / simulator config. The
/// default is [`AdmissionPolicyKind::FcfsMpl`] with no budgets, no queue
/// bound and uniform priorities — absent knobs lower to exactly the
/// paper's behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct AdmissionConfig {
    /// The gating policy.
    pub policy: AdmissionPolicyKind,
    /// Fraction of the cluster buffer pool (`n_pes · buffer_pages`)
    /// reservable by [`AdmissionPolicyKind::MemoryReservation`] /
    /// [`AdmissionPolicyKind::Malleable`].
    pub mem_budget_frac: f64,
    /// Parallelism slots per PE for [`AdmissionPolicyKind::Malleable`]
    /// (total budget = `slots_per_pe · n_pes`, rounded, at least 1).
    pub slots_per_pe: f64,
    /// Average-CPU threshold above which Malleable shrinks new
    /// admissions straight to their no-I/O floor.
    pub cpu_hot: f64,
    /// Queue bound: arrivals beyond this many waiting queries are
    /// rejected (0 = unbounded).
    pub max_queue: u32,
    /// Starvation aging: effective-priority growth per queued second.
    pub aging_rate: f64,
    /// Per-class priority weights; classes not listed weigh 1.
    pub priorities: Vec<ClassPriority>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            policy: AdmissionPolicyKind::FcfsMpl,
            mem_budget_frac: 1.0,
            slots_per_pe: 1.5,
            cpu_hot: 0.85,
            max_queue: 0,
            aging_rate: 1.0,
            priorities: Vec::new(),
        }
    }
}

impl AdmissionConfig {
    /// Build the scheduler this configuration describes for a cluster of
    /// `n_pes` nodes with `buffer_pages` pages each.
    pub fn build(&self, n_pes: u32, buffer_pages: u32) -> Scheduler {
        let mem_budget = self.mem_budget_frac * n_pes as f64 * buffer_pages as f64;
        let policy: Box<dyn crate::AdmissionPolicy> = match self.policy {
            AdmissionPolicyKind::FcfsMpl => Box::new(FcfsMpl),
            AdmissionPolicyKind::MemoryReservation => Box::new(MemoryReservation::new(mem_budget)),
            AdmissionPolicyKind::Malleable => {
                let slots = (self.slots_per_pe * n_pes as f64).round().max(1.0) as u32;
                Box::new(Malleable::new(mem_budget, slots, self.cpu_hot))
            }
        };
        Scheduler::new(policy, self.aging_rate, self.max_queue)
    }

    /// Base priority weight of a workload class (1 when not listed).
    pub fn weight_for(&self, class_name: &str) -> f64 {
        self.priorities
            .iter()
            .find(|p| p.class == class_name)
            .map_or(1.0, |p| p.weight)
    }

    /// Compact label for sweep-axis annotations and result series. Every
    /// knob that differs from its default contributes, so two distinct
    /// sweep entries can never collapse into one result series.
    pub fn label(&self) -> String {
        let d = AdmissionConfig::default();
        let name = match self.policy {
            AdmissionPolicyKind::FcfsMpl => "fcfs",
            AdmissionPolicyKind::MemoryReservation => "mem-resv",
            AdmissionPolicyKind::Malleable => "malleable",
        };
        let mut parts: Vec<String> = Vec::new();
        match self.policy {
            AdmissionPolicyKind::FcfsMpl => {}
            AdmissionPolicyKind::MemoryReservation => {
                if self.mem_budget_frac != 1.0 {
                    parts.push(format!("{}", self.mem_budget_frac));
                }
            }
            AdmissionPolicyKind::Malleable => {
                parts.push(format!("{}", self.slots_per_pe));
                if self.mem_budget_frac != 1.0 {
                    parts.push(format!("m{}", self.mem_budget_frac));
                }
                if self.cpu_hot != d.cpu_hot {
                    parts.push(format!("hot{}", self.cpu_hot));
                }
            }
        }
        if self.max_queue != d.max_queue {
            parts.push(format!("q{}", self.max_queue));
        }
        if self.aging_rate != d.aging_rate {
            parts.push(format!("age{}", self.aging_rate));
        }
        let mut base = if parts.is_empty() {
            name.to_string()
        } else {
            format!("{name}({})", parts.join(","))
        };
        if !self.priorities.is_empty() {
            base.push_str("+prio");
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_passthrough() {
        let c = AdmissionConfig::default();
        assert_eq!(c.policy, AdmissionPolicyKind::FcfsMpl);
        assert_eq!(c.max_queue, 0);
        let s = c.build(40, 50);
        assert_eq!(s.policy_name(), "fcfs");
        assert_eq!(c.label(), "fcfs");
    }

    #[test]
    fn partial_json_overlays_defaults() {
        let c: AdmissionConfig = serde_json::from_str(
            r#"{ "policy": "MemoryReservation", "mem_budget_frac": 0.8, "max_queue": 64 }"#,
        )
        .unwrap();
        assert_eq!(c.policy, AdmissionPolicyKind::MemoryReservation);
        assert_eq!(c.mem_budget_frac, 0.8);
        assert_eq!(c.max_queue, 64);
        assert_eq!(c.aging_rate, 1.0, "untouched knobs keep defaults");
        assert_eq!(c.label(), "mem-resv(0.8,q64)");
    }

    #[test]
    fn labels_distinguish_every_non_default_knob() {
        // Two sweep entries differing only in cpu_hot (or any other
        // knob) must never collapse into one result series.
        let a = AdmissionConfig {
            policy: AdmissionPolicyKind::Malleable,
            slots_per_pe: 6.0,
            cpu_hot: 0.9,
            ..AdmissionConfig::default()
        };
        let b = AdmissionConfig {
            cpu_hot: 0.5,
            ..a.clone()
        };
        assert_eq!(a.label(), "malleable(6,hot0.9)");
        assert_ne!(a.label(), b.label());
        let c = AdmissionConfig {
            policy: AdmissionPolicyKind::Malleable,
            mem_budget_frac: 2.0,
            aging_rate: 0.1,
            ..AdmissionConfig::default()
        };
        assert_eq!(c.label(), "malleable(1.5,m2,age0.1)");
    }

    #[test]
    fn config_round_trips_json() {
        let c = AdmissionConfig {
            policy: AdmissionPolicyKind::Malleable,
            slots_per_pe: 2.0,
            priorities: vec![ClassPriority {
                class: "debit-credit".into(),
                weight: 8.0,
            }],
            ..AdmissionConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: AdmissionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        assert_eq!(back.weight_for("debit-credit"), 8.0);
        assert_eq!(back.weight_for("join-1%"), 1.0);
        assert_eq!(back.label(), "malleable(2)+prio");
    }

    #[test]
    fn builders_pick_the_right_policy() {
        let mem = AdmissionConfig {
            policy: AdmissionPolicyKind::MemoryReservation,
            ..AdmissionConfig::default()
        };
        assert_eq!(mem.build(10, 50).policy_name(), "mem-resv");
        let mal = AdmissionConfig {
            policy: AdmissionPolicyKind::Malleable,
            ..AdmissionConfig::default()
        };
        assert_eq!(mal.build(10, 50).policy_name(), "malleable");
    }
}
