//! Admission tickets and grants: what a query asks for and what a policy
//! reserved for it.

use simkit::SimTime;

/// Cost-estimated resource demand of one arriving query, built by the
/// host system's planner (the hash-join cost model of
/// `lb_core::costmodel` supplies the numbers for join classes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionTicket {
    /// Dense workload-class index (queries first, then OLTP classes).
    pub class: u32,
    /// Coordinator / home PE the query will run on once admitted.
    pub coord: u32,
    /// Cluster-wide join working-space demand in buffer pages
    /// (`b_i · F` of the paper's hash-join model; ~0 for OLTP).
    pub mem_pages: f64,
    /// Estimated single-user CPU work / response time in milliseconds
    /// (diagnostics and policy heuristics; the built-in policies expose
    /// the total queued work through [`crate::Scheduler::queued_work_ms`]).
    pub cpu_work_ms: f64,
    /// Estimated degree of parallelism the placement layer would choose
    /// unconstrained (`p_su-opt`, clamped to the system size).
    pub degree: u32,
    /// Malleability floor: the smallest degree that still avoids
    /// temporary-file I/O (`p_su-noIO`). [`crate::Malleable`] never
    /// shrinks below it.
    pub degree_floor: u32,
    /// Base priority weight of the query's class (higher = served first).
    pub weight: f64,
    /// Arrival time (starvation aging grows the effective priority from
    /// here).
    pub submitted: SimTime,
}

/// Resources an [`crate::AdmissionPolicy`] reserved when admitting a
/// ticket; handed back verbatim on release so the policy can undo the
/// reservation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// Reserved working-space pages (cluster-wide).
    pub mem_pages: f64,
    /// Reserved parallelism slots.
    pub slots: u32,
    /// Degree cap imposed on the query's placement requests; 0 = the
    /// placement layer decides freely.
    pub degree_cap: u32,
}

impl Grant {
    /// A grant that reserves nothing and caps nothing ([`crate::FcfsMpl`]'s
    /// only answer). Free grants are not tracked by the scheduler, keeping
    /// the pass-through policy overhead-free.
    pub const FREE: Grant = Grant {
        mem_pages: 0.0,
        slots: 0,
        degree_cap: 0,
    };

    /// Does this grant hold any resources or impose any cap?
    pub fn is_free(&self) -> bool {
        self.mem_pages == 0.0 && self.slots == 0 && self.degree_cap == 0
    }
}

/// An admission decision for one ticket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Start now, holding the granted resources until release.
    Admit(Grant),
    /// Not now: leave the ticket queued (re-examined on every release and
    /// report round).
    Wait,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_grant_is_free() {
        assert!(Grant::FREE.is_free());
        assert!(!Grant {
            mem_pages: 1.0,
            ..Grant::FREE
        }
        .is_free());
        assert!(!Grant {
            degree_cap: 3,
            ..Grant::FREE
        }
        .is_free());
    }
}
