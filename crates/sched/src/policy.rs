//! The pluggable admission policies.
//!
//! A policy sees one [`AdmissionTicket`] at a time (the scheduler picks
//! which), answers [`Verdict::Admit`] with the resources it reserved or
//! [`Verdict::Wait`], and gets the [`Grant`] back on release. The
//! [`Malleable`] policy additionally consumes the broker's periodic
//! report rounds through [`AdmissionPolicy::on_report`] — the same
//! feedback clock the adaptive placement controller and the rebalancer
//! already run on.

use crate::ticket::{AdmissionTicket, Grant, Verdict};
use lb_core::ResourceKind;

/// Cluster-level resource signals sampled at each broker report round:
/// one average utilization per [`ResourceKind`], filled generically by
/// the host system (`signals.set(kind, broker.avg(kind))` for every
/// kind) — no per-resource fields to keep in sync when a resource is
/// added. Brokers with a failure detector additionally report the live
/// fraction of the cluster (`1.0` when nothing is suspected), so
/// capacity-budgeting policies can stop admitting work sized for nodes
/// the control plane currently believes are gone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSignals {
    avg: [f64; ResourceKind::COUNT],
    live_frac: f64,
}

impl Default for ResourceSignals {
    fn default() -> ResourceSignals {
        ResourceSignals {
            avg: [0.0; ResourceKind::COUNT],
            live_frac: 1.0,
        }
    }
}

impl ResourceSignals {
    /// Set the cluster-average utilization of one resource.
    pub fn set(&mut self, kind: ResourceKind, avg: f64) {
        self.avg[kind.index()] = avg;
    }

    /// Builder form of [`ResourceSignals::set`] (tests, hand-built
    /// signals).
    pub fn with(mut self, kind: ResourceKind, avg: f64) -> ResourceSignals {
        self.set(kind, avg);
        self
    }

    /// Cluster-average utilization of one resource.
    pub fn util(&self, kind: ResourceKind) -> f64 {
        self.avg[kind.index()]
    }

    /// Bottleneck over all kinds: the highest cluster-average utilization
    /// (unweighted max norm).
    pub fn bottleneck(&self) -> f64 {
        self.avg.iter().copied().fold(0.0, f64::max)
    }

    /// Record the fraction of nodes the broker currently believes alive
    /// (`1.0` with no failure detector or no suspects).
    pub fn set_live_frac(&mut self, frac: f64) {
        self.live_frac = frac.clamp(0.0, 1.0);
    }

    /// Fraction of nodes currently believed alive.
    pub fn live_frac(&self) -> f64 {
        self.live_frac
    }
}

/// An admission decision maker (object-safe; owned by the
/// [`crate::Scheduler`]).
pub trait AdmissionPolicy {
    /// Report label of the policy.
    fn name(&self) -> &'static str;

    /// Decide whether `ticket` may start now. An `Admit` verdict reserves
    /// the returned grant's resources until [`AdmissionPolicy::release`].
    fn admit(&mut self, ticket: &AdmissionTicket) -> Verdict;

    /// A previously admitted query finished (or aborted): hand back its
    /// grant.
    fn release(&mut self, grant: &Grant);

    /// Broker feedback hook, called once per report round. Policies that
    /// react to the observed bottleneck (e.g. [`Malleable`]'s hot-CPU
    /// shrink mode) update their state here.
    fn on_report(&mut self, _signals: &ResourceSignals) {}
}

/// The paper's admission: none beyond the per-PE MPL slots the engine
/// already enforces. Admits every ticket immediately with a free grant,
/// reproducing the seed behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsMpl;

impl AdmissionPolicy for FcfsMpl {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn admit(&mut self, _ticket: &AdmissionTicket) -> Verdict {
        Verdict::Admit(Grant::FREE)
    }

    fn release(&mut self, _grant: &Grant) {}
}

/// Admit while the sum of reserved join working-space memory stays within
/// a cluster-wide budget. A query larger than the whole budget is still
/// admitted when nothing else is reserved (it would otherwise wait
/// forever; it pays with temporary-file I/O instead), and tickets that
/// demand no working space (OLTP, scans, updates) always pass — they
/// consume none of the gated resource.
#[derive(Debug, Clone)]
pub struct MemoryReservation {
    /// Reservable pages (a fraction of the cluster's buffer pool).
    budget_pages: f64,
    reserved: f64,
    /// Outstanding grants that actually reserved memory. The
    /// oversized-query bypass keys on this integer, not on
    /// `reserved > 0.0`: releases subtract floats in arbitrary order, and
    /// a leftover rounding epsilon must not disable the bypass forever
    /// (the queue head would then wait on a release that never comes).
    holders: u32,
}

impl MemoryReservation {
    /// A reservation policy over `budget_pages` of cluster memory.
    pub fn new(budget_pages: f64) -> MemoryReservation {
        MemoryReservation {
            budget_pages: budget_pages.max(1.0),
            reserved: 0.0,
            holders: 0,
        }
    }

    /// Currently reserved pages.
    pub fn reserved(&self) -> f64 {
        self.reserved
    }
}

impl AdmissionPolicy for MemoryReservation {
    fn name(&self) -> &'static str {
        "mem-resv"
    }

    fn admit(&mut self, ticket: &AdmissionTicket) -> Verdict {
        if ticket.mem_pages > 0.0
            && self.holders > 0
            && self.reserved + ticket.mem_pages > self.budget_pages
        {
            return Verdict::Wait;
        }
        if ticket.mem_pages > 0.0 {
            self.reserved += ticket.mem_pages;
            self.holders += 1;
        }
        Verdict::Admit(Grant {
            mem_pages: ticket.mem_pages,
            slots: 0,
            degree_cap: 0,
        })
    }

    fn release(&mut self, grant: &Grant) {
        if grant.mem_pages > 0.0 {
            self.reserved = (self.reserved - grant.mem_pages).max(0.0);
            self.holders = self.holders.saturating_sub(1);
            if self.holders == 0 {
                self.reserved = 0.0;
            }
        }
    }
}

/// Malleable multi-resource admission (Garofalakis & Ioannidis): besides
/// the memory budget of [`MemoryReservation`], the **total degree of
/// parallelism** of admitted queries is bounded by a slot budget. A query
/// whose estimated degree does not fit is *shrunk* — its placement
/// requests are capped at the largest degree that fits, never below its
/// no-I/O floor — and only made to wait when even the floor does not fit.
/// When the report rounds show hot CPUs the policy shrinks pre-emptively
/// to the floor, trading per-query speedup for system throughput.
#[derive(Debug, Clone)]
pub struct Malleable {
    mem_budget: f64,
    mem_reserved: f64,
    /// Outstanding memory-reserving grants (see
    /// [`MemoryReservation::holders`]: the idle-budget bypass must key on
    /// an integer, not on a float sum that release-order rounding can
    /// leave permanently positive).
    mem_holders: u32,
    slot_budget: u32,
    slots_used: u32,
    /// Average-CPU threshold above which new admissions shrink straight
    /// to their floor.
    cpu_hot: f64,
    hot: bool,
    /// Live fraction of the cluster from the last report round: the slot
    /// budget was sized for the whole machine, so when the broker's
    /// failure detector suspects nodes the effective budget shrinks
    /// proportionally (and recovers the moment suspicion clears). `1.0`
    /// under a clean control plane — the budget is then exactly
    /// `slot_budget`.
    live_frac: f64,
}

impl Malleable {
    /// A malleable policy with `mem_budget` reservable pages and
    /// `slot_budget` total parallelism slots.
    pub fn new(mem_budget: f64, slot_budget: u32, cpu_hot: f64) -> Malleable {
        Malleable {
            mem_budget: mem_budget.max(1.0),
            mem_reserved: 0.0,
            mem_holders: 0,
            slot_budget: slot_budget.max(1),
            slots_used: 0,
            cpu_hot,
            hot: false,
            live_frac: 1.0,
        }
    }

    /// The slot budget scaled to the live cluster (ceil, never below 1
    /// so admission cannot wedge; equals `slot_budget` at full health).
    fn effective_slot_budget(&self) -> u32 {
        ((f64::from(self.slot_budget) * self.live_frac).ceil() as u32).max(1)
    }

    /// Parallelism slots currently in use.
    pub fn slots_used(&self) -> u32 {
        self.slots_used
    }

    /// Is the hot-CPU shrink mode active?
    pub fn hot(&self) -> bool {
        self.hot
    }
}

impl AdmissionPolicy for Malleable {
    fn name(&self) -> &'static str {
        "malleable"
    }

    fn admit(&mut self, ticket: &AdmissionTicket) -> Verdict {
        if ticket.mem_pages > 0.0
            && self.mem_holders > 0
            && self.mem_reserved + ticket.mem_pages > self.mem_budget
        {
            return Verdict::Wait;
        }
        let degree = ticket.degree.max(1);
        let floor = ticket.degree_floor.clamp(1, degree);
        let target = if self.hot { floor } else { degree };
        let avail = self.effective_slot_budget().saturating_sub(self.slots_used);
        let granted = if self.slots_used == 0 {
            // An idle slot budget never blocks (a single query wider than
            // the whole budget must not wait forever).
            target
        } else if avail >= floor {
            target.min(avail)
        } else {
            return Verdict::Wait;
        };
        if ticket.mem_pages > 0.0 {
            self.mem_reserved += ticket.mem_pages;
            self.mem_holders += 1;
        }
        self.slots_used += granted;
        Verdict::Admit(Grant {
            mem_pages: ticket.mem_pages,
            slots: granted,
            degree_cap: if granted < ticket.degree { granted } else { 0 },
        })
    }

    fn release(&mut self, grant: &Grant) {
        if grant.mem_pages > 0.0 {
            self.mem_reserved = (self.mem_reserved - grant.mem_pages).max(0.0);
            self.mem_holders = self.mem_holders.saturating_sub(1);
            if self.mem_holders == 0 {
                self.mem_reserved = 0.0;
            }
        }
        self.slots_used = self.slots_used.saturating_sub(grant.slots);
    }

    fn on_report(&mut self, signals: &ResourceSignals) {
        // Read through the generic per-kind accessor: the shrink trigger
        // is "the CPU kind's cluster average", not a bespoke field.
        self.hot = signals.util(ResourceKind::Cpu) > self.cpu_hot;
        self.live_frac = signals.live_frac();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn ticket(mem: f64, degree: u32, floor: u32) -> AdmissionTicket {
        AdmissionTicket {
            class: 0,
            coord: 0,
            mem_pages: mem,
            cpu_work_ms: 100.0,
            degree,
            degree_floor: floor,
            weight: 1.0,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn fcfs_admits_everything_for_free() {
        let mut p = FcfsMpl;
        for _ in 0..1000 {
            assert_eq!(p.admit(&ticket(1e9, 80, 80)), Verdict::Admit(Grant::FREE));
        }
    }

    #[test]
    fn memory_reservation_blocks_at_budget() {
        let mut p = MemoryReservation::new(300.0);
        let t = ticket(131.25, 30, 3);
        assert!(matches!(p.admit(&t), Verdict::Admit(_)));
        assert!(matches!(p.admit(&t), Verdict::Admit(_)));
        assert_eq!(p.admit(&t), Verdict::Wait, "3rd would exceed 300 pages");
        p.release(&Grant {
            mem_pages: 131.25,
            slots: 0,
            degree_cap: 0,
        });
        assert!(matches!(p.admit(&t), Verdict::Admit(_)));
    }

    #[test]
    fn memory_reservation_never_starves_oversized_queries() {
        let mut p = MemoryReservation::new(100.0);
        let huge = ticket(500.0, 10, 5);
        assert!(matches!(p.admit(&huge), Verdict::Admit(_)), "idle: admit");
        assert_eq!(p.admit(&ticket(10.0, 2, 1)), Verdict::Wait);
    }

    #[test]
    fn float_residue_never_disables_the_oversized_bypass() {
        // Releases subtract floats in admit order; non-representable page
        // counts can leave `reserved` at a tiny positive epsilon with no
        // grant outstanding. The bypass keys on the integer holder count,
        // so an oversized query must still admit on the idle budget.
        let mut p = MemoryReservation::new(100.0);
        let sizes = [30.1f64, 30.2, 0.3];
        let grants: Vec<Grant> = sizes
            .iter()
            .map(|&mem| match p.admit(&ticket(mem, 2, 1)) {
                Verdict::Admit(g) => g,
                Verdict::Wait => panic!("fits the budget"),
            })
            .collect();
        for g in &grants {
            p.release(g);
        }
        assert_eq!(p.reserved(), 0.0, "idle budget fully reset");
        assert!(
            matches!(p.admit(&ticket(500.0, 10, 5)), Verdict::Admit(_)),
            "oversized query admits on the idle budget despite residue"
        );
        // Same for Malleable's memory gate.
        let mut m = Malleable::new(100.0, 1000, 0.85);
        let grants: Vec<Grant> = sizes
            .iter()
            .map(|&mem| match m.admit(&ticket(mem, 2, 1)) {
                Verdict::Admit(g) => g,
                Verdict::Wait => panic!("fits the budget"),
            })
            .collect();
        for g in &grants {
            m.release(g);
        }
        assert!(matches!(m.admit(&ticket(500.0, 10, 5)), Verdict::Admit(_)));
    }

    #[test]
    fn zero_memory_tickets_always_pass_the_memory_gate() {
        // OLTP/scan tickets reserve nothing: a full budget must not make
        // them wait (that would head-of-line block the whole queue on a
        // resource they do not consume).
        let mut p = MemoryReservation::new(100.0);
        assert!(matches!(p.admit(&ticket(500.0, 10, 5)), Verdict::Admit(_)));
        assert!(matches!(p.admit(&ticket(0.0, 1, 1)), Verdict::Admit(_)));
        let mut m = Malleable::new(100.0, 1000, 0.85);
        assert!(matches!(m.admit(&ticket(500.0, 10, 5)), Verdict::Admit(_)));
        assert!(matches!(m.admit(&ticket(0.0, 1, 1)), Verdict::Admit(_)));
    }

    #[test]
    fn malleable_shrinks_before_waiting() {
        let mut p = Malleable::new(1e9, 10, 0.85);
        // First: full degree 6. Second: 4 slots left ≥ floor 2 → cap 4.
        let t = ticket(10.0, 6, 2);
        let Verdict::Admit(g1) = p.admit(&t) else {
            panic!("admit")
        };
        assert_eq!((g1.slots, g1.degree_cap), (6, 0));
        let Verdict::Admit(g2) = p.admit(&t) else {
            panic!("admit")
        };
        assert_eq!((g2.slots, g2.degree_cap), (4, 4), "shrunk to fit");
        // 0 slots left < floor → wait.
        assert_eq!(p.admit(&t), Verdict::Wait);
        p.release(&g1);
        assert_eq!(p.slots_used(), 4);
        let Verdict::Admit(g3) = p.admit(&t) else {
            panic!("admit")
        };
        assert_eq!(g3.slots, 6);
    }

    #[test]
    fn malleable_hot_mode_shrinks_to_floor() {
        let mut p = Malleable::new(1e9, 100, 0.85);
        p.on_report(
            &ResourceSignals::default()
                .with(ResourceKind::Cpu, 0.9)
                .with(ResourceKind::Disk, 0.1),
        );
        assert!(p.hot());
        let Verdict::Admit(g) = p.admit(&ticket(10.0, 30, 3)) else {
            panic!("admit")
        };
        assert_eq!((g.slots, g.degree_cap), (3, 3), "hot: straight to floor");
        p.on_report(&ResourceSignals::default());
        assert!(!p.hot());
    }

    #[test]
    fn malleable_idle_budget_never_blocks() {
        let mut p = Malleable::new(1e9, 4, 0.85);
        let Verdict::Admit(g) = p.admit(&ticket(10.0, 30, 8)) else {
            panic!("idle budget must admit")
        };
        assert_eq!(g.slots, 30, "idle: full degree even beyond the budget");
        assert_eq!(p.admit(&ticket(10.0, 30, 8)), Verdict::Wait);
    }

    #[test]
    fn malleable_slot_budget_tracks_live_fraction() {
        let mut p = Malleable::new(1e9, 10, 0.85);
        // Half the cluster suspected: the 10-slot budget behaves like 5.
        let mut s = ResourceSignals::default();
        s.set_live_frac(0.5);
        p.on_report(&s);
        let t = ticket(10.0, 4, 2);
        let Verdict::Admit(g1) = p.admit(&t) else {
            panic!("admit")
        };
        assert_eq!(g1.slots, 4);
        // 1 effective slot left < floor 2 → wait, though the nominal
        // budget still has 6 slots free.
        assert_eq!(p.admit(&t), Verdict::Wait);
        // Suspicion clears: full budget restored immediately.
        p.on_report(&ResourceSignals::default());
        assert!(matches!(p.admit(&t), Verdict::Admit(_)));
        // Default signals carry live_frac 1.0 — nominal budget intact.
        assert!((ResourceSignals::default().live_frac() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn malleable_memory_gate_applies_first() {
        let mut p = Malleable::new(100.0, 1000, 0.85);
        assert!(matches!(p.admit(&ticket(90.0, 2, 1)), Verdict::Admit(_)));
        assert_eq!(p.admit(&ticket(20.0, 2, 1)), Verdict::Wait, "memory full");
    }
}
