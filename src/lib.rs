//! # parallel_lb — dynamic multi-resource load balancing in parallel DBs
//!
//! Umbrella crate of the reproduction of *Rahm & Marek, "Dynamic
//! Multi-Resource Load Balancing in Parallel Database Systems",
//! VLDB 1995*. Re-exports the workspace crates:
//!
//! * [`simkit`] — discrete-event simulation kernel;
//! * [`hardware`] — CPU / disk / network models;
//! * [`dbmodel`] — catalog, B+-trees, buffer manager, locking, logging;
//! * [`engine`] — scan / PPHJ join / OLTP execution engine;
//! * [`lb_core`] — the load-balancing strategies (the paper's contribution);
//! * [`workload`] — multi-class workload model;
//! * [`snsim`] — the integrated simulator and experiment harness.
//!
//! ```no_run
//! use parallel_lb::prelude::*;
//!
//! let cfg = SimConfig::paper_default(
//!     40,
//!     WorkloadSpec::homogeneous_join(0.01, 0.25),
//!     Strategy::OptIoCpu,
//! );
//! println!("{:.0} ms", snsim::run_one(cfg).join_resp_ms());
//! ```

pub use dbmodel;
pub use engine;
pub use hardware;
pub use lb_core;
pub use obs;
pub use simkit;
pub use snsim;
pub use workload;

/// Everything needed for typical experiments.
pub mod prelude {
    pub use lb_core::{ControlNode, DegreePolicy, SelectPolicy, Strategy};
    pub use simkit::{SimDur, SimTime};
    pub use snsim::{run_one, run_parallel, run_reps, SimConfig, Summary};
    pub use workload::{ArrivalSpec, NodeFilter, WorkloadSpec};
}
